//! The simulated three-level cache hierarchy (L1-D → L2 → LLC).
//!
//! The hierarchy is the reproduction's stand-in for the Sniper-simulated
//! memory system of Table VI. L1 and L2 are LRU-managed filters; the LLC uses
//! whichever replacement policy the experiment is evaluating. GRASP's region
//! classification happens alongside the (virtual) address on its way to the
//! LLC: the [`RegionClassifier`] attaches a 2-bit reuse hint to every LLC
//! request, exactly as in Fig. 4 of the paper.

use crate::cache::SetAssocCache;
use crate::config::HierarchyConfig;
use crate::hint::RegionClassifier;
use crate::policy::lru::Lru;
use crate::policy::PolicyDispatch;
use crate::prefetch::StridePrefetcher;
use crate::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};
use crate::stats::HierarchyStats;
use crate::timing::TimingModel;
use crate::trace::LlcTrace;

/// A three-level cache hierarchy with an L1 stride prefetcher and GRASP's
/// address classification in front of the LLC.
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    classifier: RegionClassifier,
    prefetcher: Option<StridePrefetcher>,
    memory_accesses: u64,
    llc_trace: LlcTrace,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("config", &self.config)
            .field("llc_policy", &self.llc.policy_name())
            .field("memory_accesses", &self.memory_accesses)
            .finish()
    }
}

impl Hierarchy {
    /// Creates a hierarchy with the given configuration, LLC replacement
    /// policy and region classifier.
    ///
    /// Pass [`RegionClassifier::disabled`] to model a system without GRASP's
    /// interface (every request carries the Default hint).
    pub fn new(
        config: HierarchyConfig,
        llc_policy: impl Into<PolicyDispatch>,
        classifier: RegionClassifier,
    ) -> Self {
        let l1 = SetAssocCache::new(
            "L1-D",
            config.l1,
            Lru::new(config.l1.sets(), config.l1.ways),
        );
        let l2 = SetAssocCache::new("L2", config.l2, Lru::new(config.l2.sets(), config.l2.ways));
        let llc = SetAssocCache::new("LLC", config.llc, llc_policy);
        Self {
            config,
            l1,
            l2,
            llc,
            classifier,
            prefetcher: config.prefetch.then(StridePrefetcher::default),
            memory_accesses: 0,
            llc_trace: LlcTrace::new(),
        }
    }

    /// Pre-sizes the LLC trace for roughly `expected_records` records so the
    /// recording loop does not reallocate (only meaningful when
    /// [`HierarchyConfig::record_llc_trace`] is set).
    pub fn reserve_llc_trace(&mut self, expected_records: usize) {
        if self.config.record_llc_trace {
            self.llc_trace.reserve(expected_records);
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Name of the LLC replacement policy.
    pub fn llc_policy_name(&self) -> &'static str {
        self.llc.policy_name()
    }

    /// The region classifier in use.
    pub fn classifier(&self) -> &RegionClassifier {
        &self.classifier
    }

    /// Programs the Address Bound Registers with the bounds of the
    /// application's Property Arrays and rebuilds the region classifier.
    ///
    /// This models the software side of GRASP's interface (Sec. III-A): the
    /// graph framework calls this once at application start-up, after it has
    /// allocated its Property Arrays.
    pub fn program_abrs(&mut self, bounds: &[(u64, u64)]) {
        let mut abrs = crate::hint::AddressBoundRegisters::new();
        for &(start, end) in bounds {
            abrs.program(start, end);
        }
        self.classifier = RegionClassifier::new(abrs, self.config.llc.size_bytes);
    }

    /// Performs one demand memory access.
    ///
    /// Returns `true` if the access hit somewhere on chip (L1, L2 or LLC).
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        site: AccessSite,
        region: RegionLabel,
    ) -> bool {
        let base = AccessInfo {
            addr,
            kind,
            site,
            hint: crate::hint::ReuseHint::Default,
            region,
        };

        let on_chip = self.demand_access(&base);

        // The prefetcher observes the demand stream at L1 and issues at most
        // one prefetch per access.
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            if let Some(predicted) = prefetcher.observe(site, addr) {
                let pf = AccessInfo {
                    addr: predicted,
                    kind: AccessKind::Read,
                    site,
                    hint: crate::hint::ReuseHint::Default,
                    region,
                };
                self.prefetch_access(&pf);
            }
        }
        on_chip
    }

    /// Convenience wrapper for a read access.
    pub fn read(&mut self, addr: u64, site: AccessSite, region: RegionLabel) -> bool {
        self.access(addr, AccessKind::Read, site, region)
    }

    /// Convenience wrapper for a write access.
    pub fn write(&mut self, addr: u64, site: AccessSite, region: RegionLabel) -> bool {
        self.access(addr, AccessKind::Write, site, region)
    }

    fn demand_access(&mut self, info: &AccessInfo) -> bool {
        if self.l1.access(info).is_hit() {
            return true;
        }
        if self.l2.access(info).is_hit() {
            return true;
        }
        // The LLC request carries the 2-bit reuse hint computed by GRASP's
        // classification logic (Fig. 4).
        let llc_info = info.with_hint(self.classifier.classify(info.addr));
        if self.config.record_llc_trace {
            self.llc_trace.push(&llc_info);
        }
        let hit = self.llc.access(&llc_info).is_hit();
        if !hit {
            self.memory_accesses += 1;
        }
        hit
    }

    fn prefetch_access(&mut self, info: &AccessInfo) {
        if self.l1.prefetch(info).is_hit() {
            return;
        }
        if self.l2.prefetch(info).is_hit() {
            return;
        }
        let llc_info = info.with_hint(self.classifier.classify(info.addr));
        self.llc.prefetch(&llc_info);
    }

    /// Accumulated statistics of every level.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats().clone(),
            l2: self.l2.stats().clone(),
            llc: self.llc.stats().clone(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// The recorded LLC demand-access trace (empty unless
    /// [`HierarchyConfig::record_llc_trace`] is set).
    pub fn llc_trace(&self) -> &LlcTrace {
        &self.llc_trace
    }

    /// Consumes the hierarchy and returns the recorded LLC trace.
    pub fn into_llc_trace(self) -> LlcTrace {
        self.llc_trace
    }

    /// Estimated execution cycles under `model`, given `instructions` of
    /// non-memory work.
    pub fn estimated_cycles(&self, model: &TimingModel, instructions: u64) -> f64 {
        model.cycles(&self.stats(), instructions)
    }

    /// Invalidates every cache level, resets every replacement policy and
    /// clears the prefetcher's stride training (used between warm-up and the
    /// region of interest). Without the policy/prefetcher resets, stale RRPV
    /// counters, predictor tables and trained strides from the warm-up phase
    /// would leak into the measured phase.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            prefetcher.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::hint::{AddressBoundRegisters, ReuseHint};
    use crate::policy::rrip::Drrip;

    fn hierarchy(classifier: RegionClassifier) -> Hierarchy {
        let config = HierarchyConfig::scaled_default().with_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        Hierarchy::new(config, llc, classifier)
    }

    #[test]
    fn l1_filters_repeated_accesses() {
        let mut h = hierarchy(RegionClassifier::disabled());
        h.read(0x1000, 1, RegionLabel::Property);
        for _ in 0..9 {
            h.read(0x1000, 1, RegionLabel::Property);
        }
        let stats = h.stats();
        assert_eq!(stats.l1.accesses, 10);
        assert_eq!(stats.l1.misses, 1);
        // Only the single L1 miss reached L2 and the LLC.
        assert_eq!(stats.l2.accesses, 1);
        assert_eq!(stats.llc.accesses, 1);
        assert_eq!(stats.memory_accesses, 1);
    }

    #[test]
    fn spatial_locality_is_filtered_before_the_llc() {
        // Sequential 8-byte elements: 8 per 64-byte block, so the LLC sees at
        // most 1/8th of the accesses (fewer once the prefetcher kicks in).
        let mut h = hierarchy(RegionClassifier::disabled());
        for i in 0..4096u64 {
            h.read(0x10000 + i * 8, 2, RegionLabel::EdgeArray);
        }
        let stats = h.stats();
        assert_eq!(stats.l1.accesses, 4096);
        assert!(
            stats.llc.accesses <= 4096 / 8,
            "llc accesses {} should be spatially filtered",
            stats.llc.accesses
        );
    }

    #[test]
    fn classifier_attaches_hints_to_llc_requests() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x0, 0x100000);
        let config = HierarchyConfig::scaled_default();
        let classifier = RegionClassifier::new(abrs, config.llc.size_bytes);
        let mut h = hierarchy(classifier);
        // An address at the start of the property array is High-Reuse; one
        // far past the two LLC-sized regions is Low-Reuse.
        h.read(0x0, 1, RegionLabel::Property);
        h.read(0xF0000, 1, RegionLabel::Property);
        let trace = h.llc_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.get(0).hint, ReuseHint::High);
        assert_eq!(trace.get(1).hint, ReuseHint::Low);
    }

    #[test]
    fn memory_accesses_equal_llc_demand_misses() {
        let mut h = hierarchy(RegionClassifier::disabled());
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let addr = (x >> 20) % (8 * 1024 * 1024);
            h.read(addr, 3, RegionLabel::Property);
        }
        let stats = h.stats();
        assert_eq!(stats.memory_accesses, stats.llc.misses);
        assert!(stats.llc.accesses > 0);
    }

    #[test]
    fn prefetcher_reduces_misses_on_streaming_patterns() {
        let run = |prefetch: bool| -> u64 {
            let mut config = HierarchyConfig::scaled_default();
            config.prefetch = prefetch;
            let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
            let mut h = Hierarchy::new(config, llc, RegionClassifier::disabled());
            for i in 0..20_000u64 {
                h.read(i * 8, 1, RegionLabel::EdgeArray);
            }
            // Misses seen by the core are L1 misses that also miss everywhere.
            h.stats().memory_accesses
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with <= without,
            "prefetching must not increase demand memory accesses ({with} vs {without})"
        );
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut h = hierarchy(RegionClassifier::disabled());
        h.read(0x40, 1, RegionLabel::Other);
        h.flush();
        // After a flush the same access misses all the way to memory again.
        let before = h.stats().memory_accesses;
        h.read(0x40, 1, RegionLabel::Other);
        assert_eq!(h.stats().memory_accesses, before + 1);
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let config = HierarchyConfig::scaled_default();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let mut h = Hierarchy::new(config, llc, RegionClassifier::disabled());
        h.read(0x123456, 1, RegionLabel::Property);
        assert!(h.llc_trace().is_empty());
    }
}
