//! The simulated three-level cache hierarchy (L1-D → L2 → LLC).
//!
//! The hierarchy is the reproduction's stand-in for the Sniper-simulated
//! memory system of Table VI, composed from the two stages of
//! [`crate::stage`]: the policy-independent upper levels
//! ([`UpperLevels`]: L1 + L2 + prefetcher + GRASP's region classification,
//! exactly as in Fig. 4 of the paper) and the LLC stage ([`LlcStage`]) under
//! whichever replacement policy the experiment is evaluating. When trace
//! recording is enabled, every post-L2 request is appended to an
//! [`LlcTrace`] *and* simulated — the same stream that, replayed through
//! [`LlcTrace::replay`], reproduces this hierarchy's statistics bit-for-bit.

use crate::config::HierarchyConfig;
use crate::hint::RegionClassifier;
use crate::policy::PolicyDispatch;
use crate::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};
use crate::stage::{LlcSink, LlcStage, UpperLevels};
use crate::stats::HierarchyStats;
use crate::timing::TimingModel;
use crate::trace::LlcTrace;

/// A three-level cache hierarchy with an L1 stride prefetcher and GRASP's
/// address classification in front of the LLC.
pub struct Hierarchy {
    upper: UpperLevels,
    llc: LlcStage,
    recording: bool,
    llc_trace: LlcTrace,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("config", self.upper.config())
            .field("llc_policy", &self.llc.policy_name())
            .field("memory_accesses", &self.llc.memory_accesses())
            .finish()
    }
}

/// Sink used on the direct simulation path: optionally records each post-L2
/// request, then forwards it into the LLC stage.
struct SimulateAndRecord<'a> {
    llc: &'a mut LlcStage,
    trace: &'a mut LlcTrace,
    recording: bool,
}

impl LlcSink for SimulateAndRecord<'_> {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        if self.recording {
            self.trace.push(info);
        }
        self.llc.demand(info)
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        if self.recording {
            self.trace.push_prefetch(info);
        }
        self.llc.prefetch(info);
    }

    fn writeback(&mut self, addr: u64) {
        if self.recording {
            self.trace.push_writeback(addr);
        }
        self.llc.writeback(addr);
    }

    fn push_batch(&mut self, addrs: &[u64], meta: &[u32]) {
        if self.recording {
            self.trace.push_batch_raw(addrs, meta);
        }
        self.llc.push_batch(addrs, meta);
    }
}

impl Hierarchy {
    /// Creates a hierarchy with the given configuration, LLC replacement
    /// policy and region classifier.
    ///
    /// Pass [`RegionClassifier::disabled`] to model a system without GRASP's
    /// interface (every request carries the Default hint).
    pub fn new(
        config: HierarchyConfig,
        llc_policy: impl Into<PolicyDispatch>,
        classifier: RegionClassifier,
    ) -> Self {
        Self {
            upper: UpperLevels::new(config, classifier),
            llc: LlcStage::new(config.llc, llc_policy),
            recording: config.record_llc_trace,
            llc_trace: LlcTrace::new(),
        }
    }

    /// Pre-sizes the LLC trace for roughly `expected_records` records so the
    /// recording loop does not reallocate (only meaningful when
    /// [`HierarchyConfig::record_llc_trace`] is set).
    pub fn reserve_llc_trace(&mut self, expected_records: usize) {
        if self.recording {
            self.llc_trace.reserve(expected_records);
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        self.upper.config()
    }

    /// Name of the LLC replacement policy.
    pub fn llc_policy_name(&self) -> &'static str {
        self.llc.policy_name()
    }

    /// The region classifier in use.
    pub fn classifier(&self) -> &RegionClassifier {
        self.upper.classifier()
    }

    /// Programs the Address Bound Registers with the bounds of the
    /// application's Property Arrays and rebuilds the region classifier.
    ///
    /// This models the software side of GRASP's interface (Sec. III-A): the
    /// graph framework calls this once at application start-up, after it has
    /// allocated its Property Arrays.
    pub fn program_abrs(&mut self, bounds: &[(u64, u64)]) {
        self.upper.program_abrs(bounds);
    }

    /// Performs one demand memory access.
    ///
    /// Returns `true` if the access hit somewhere on chip (L1, L2 or LLC).
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        site: AccessSite,
        region: RegionLabel,
    ) -> bool {
        let mut sink = SimulateAndRecord {
            llc: &mut self.llc,
            trace: &mut self.llc_trace,
            recording: self.recording,
        };
        self.upper.access(addr, kind, site, region, &mut sink)
    }

    /// Performs a whole run of demand accesses through the batched kernel
    /// ([`UpperLevels::access_batch`]): the upper levels filter the run
    /// column-wise and whatever escapes L2 is appended to the trace (when
    /// recording) and simulated by the LLC in bulk. Bit-identical to calling
    /// [`Hierarchy::access`] once per element, in order.
    pub fn access_batch(&mut self, batch: &[AccessInfo]) {
        let mut sink = SimulateAndRecord {
            llc: &mut self.llc,
            trace: &mut self.llc_trace,
            recording: self.recording,
        };
        self.upper.access_batch(batch, &mut sink);
    }

    /// Convenience wrapper for a read access.
    pub fn read(&mut self, addr: u64, site: AccessSite, region: RegionLabel) -> bool {
        self.access(addr, AccessKind::Read, site, region)
    }

    /// Convenience wrapper for a write access.
    pub fn write(&mut self, addr: u64, site: AccessSite, region: RegionLabel) -> bool {
        self.access(addr, AccessKind::Write, site, region)
    }

    /// Accumulated statistics of every level.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.upper.l1_stats().clone(),
            l2: self.upper.l2_stats().clone(),
            llc: self.llc.stats().clone(),
            memory_accesses: self.llc.memory_accesses(),
        }
    }

    /// The recorded post-L2 trace (empty unless
    /// [`HierarchyConfig::record_llc_trace`] is set). The upper-level
    /// context is only attached on [`Hierarchy::into_llc_trace`].
    pub fn llc_trace(&self) -> &LlcTrace {
        &self.llc_trace
    }

    /// Consumes the hierarchy and returns the recorded trace, with the
    /// upper-level statistics and programmed ABR bounds attached so the
    /// trace alone can reproduce full hierarchy statistics on replay.
    pub fn into_llc_trace(self) -> LlcTrace {
        let mut trace = self.llc_trace;
        trace.set_context(self.upper.record_context());
        trace
    }

    /// Estimated execution cycles under `model`, given `instructions` of
    /// non-memory work.
    pub fn estimated_cycles(&self, model: &TimingModel, instructions: u64) -> f64 {
        model.cycles(&self.stats(), instructions)
    }

    /// Invalidates every cache level, resets every replacement policy and
    /// clears the prefetcher's stride training (used between warm-up and the
    /// region of interest). Without the policy/prefetcher resets, stale RRPV
    /// counters, predictor tables and trained strides from the warm-up phase
    /// would leak into the measured phase. When recording, a flush marker is
    /// appended so replay reproduces the reset at the same stream position.
    pub fn flush(&mut self) {
        self.upper.flush();
        self.llc.flush();
        if self.recording {
            self.llc_trace.push_flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;
    use crate::hint::{AddressBoundRegisters, ReuseHint};
    use crate::policy::rrip::Drrip;
    use crate::trace::TraceEvent;

    fn hierarchy(classifier: RegionClassifier) -> Hierarchy {
        let config = HierarchyConfig::scaled_default().with_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        Hierarchy::new(config, llc, classifier)
    }

    #[test]
    fn l1_filters_repeated_accesses() {
        let mut h = hierarchy(RegionClassifier::disabled());
        h.read(0x1000, 1, RegionLabel::Property);
        for _ in 0..9 {
            h.read(0x1000, 1, RegionLabel::Property);
        }
        let stats = h.stats();
        assert_eq!(stats.l1.accesses, 10);
        assert_eq!(stats.l1.misses, 1);
        // Only the single L1 miss reached L2 and the LLC.
        assert_eq!(stats.l2.accesses, 1);
        assert_eq!(stats.llc.accesses, 1);
        assert_eq!(stats.memory_accesses, 1);
    }

    #[test]
    fn spatial_locality_is_filtered_before_the_llc() {
        // Sequential 8-byte elements: 8 per 64-byte block, so the LLC sees at
        // most 1/8th of the accesses (fewer once the prefetcher kicks in).
        let mut h = hierarchy(RegionClassifier::disabled());
        for i in 0..4096u64 {
            h.read(0x10000 + i * 8, 2, RegionLabel::EdgeArray);
        }
        let stats = h.stats();
        assert_eq!(stats.l1.accesses, 4096);
        assert!(
            stats.llc.accesses <= 4096 / 8,
            "llc accesses {} should be spatially filtered",
            stats.llc.accesses
        );
    }

    #[test]
    fn classifier_attaches_hints_to_llc_requests() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x0, 0x100000);
        let config = HierarchyConfig::scaled_default();
        let classifier = RegionClassifier::new(abrs, config.llc.size_bytes);
        let mut h = hierarchy(classifier);
        // An address at the start of the property array is High-Reuse; one
        // far past the two LLC-sized regions is Low-Reuse.
        h.read(0x0, 1, RegionLabel::Property);
        h.read(0xF0000, 1, RegionLabel::Property);
        let demands = h.llc_trace().demand_vec();
        assert_eq!(demands.len(), 2);
        assert_eq!(demands[0].hint, ReuseHint::High);
        assert_eq!(demands[1].hint, ReuseHint::Low);
    }

    #[test]
    fn memory_accesses_equal_llc_demand_misses() {
        let mut h = hierarchy(RegionClassifier::disabled());
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let addr = (x >> 20) % (8 * 1024 * 1024);
            h.read(addr, 3, RegionLabel::Property);
        }
        let stats = h.stats();
        assert_eq!(stats.memory_accesses, stats.llc.misses);
        assert!(stats.llc.accesses > 0);
    }

    #[test]
    fn prefetcher_reduces_misses_on_streaming_patterns() {
        let run = |prefetch: bool| -> u64 {
            let mut config = HierarchyConfig::scaled_default();
            config.prefetch = prefetch;
            let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
            let mut h = Hierarchy::new(config, llc, RegionClassifier::disabled());
            for i in 0..20_000u64 {
                h.read(i * 8, 1, RegionLabel::EdgeArray);
            }
            // Misses seen by the core are L1 misses that also miss everywhere.
            h.stats().memory_accesses
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with <= without,
            "prefetching must not increase demand memory accesses ({with} vs {without})"
        );
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut h = hierarchy(RegionClassifier::disabled());
        h.read(0x40, 1, RegionLabel::Other);
        h.flush();
        // After a flush the same access misses all the way to memory again.
        let before = h.stats().memory_accesses;
        h.read(0x40, 1, RegionLabel::Other);
        assert_eq!(h.stats().memory_accesses, before + 1);
    }

    #[test]
    fn flush_markers_are_recorded() {
        let mut h = hierarchy(RegionClassifier::disabled());
        h.read(0x40, 1, RegionLabel::Other);
        h.flush();
        h.read(0x40, 1, RegionLabel::Other);
        let events = h.llc_trace().to_vec();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[1], TraceEvent::Flush));
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let config = HierarchyConfig::scaled_default();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let mut h = Hierarchy::new(config, llc, RegionClassifier::disabled());
        h.read(0x123456, 1, RegionLabel::Property);
        assert!(h.llc_trace().is_empty());
    }

    #[test]
    fn dirty_victims_reach_the_llc_as_writebacks() {
        let mut h = hierarchy(RegionClassifier::disabled());
        // Touch far more distinct blocks than L1 + L2 hold, writing each:
        // dirty victims must spill past L2.
        for i in 0..8192u64 {
            h.write(i * 64 * 17, 1, RegionLabel::Property);
        }
        let stats = h.stats();
        assert!(stats.llc.writeback_accesses > 0);
        // The recorded trace carries the same writebacks.
        let recorded = h
            .llc_trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Writeback(_)))
            .count() as u64;
        assert_eq!(recorded, stats.llc.writeback_accesses);
    }

    #[test]
    fn batched_hierarchy_accesses_match_scalar_ones_bit_for_bit() {
        let mix: Vec<AccessInfo> = {
            let mut x = 11u64;
            (0..25_000u64)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                    let addr = match i % 3 {
                        0 => i * 8,
                        _ => (x >> 22) % (4 * 1024 * 1024),
                    };
                    AccessInfo {
                        addr,
                        kind: if i % 4 == 1 {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        site: (i % 6) as u16,
                        hint: ReuseHint::Default,
                        region: RegionLabel::ALL[(i % 5) as usize],
                    }
                })
                .collect()
        };
        let mut scalar = hierarchy(RegionClassifier::disabled());
        for info in &mix {
            scalar.access(info.addr, info.kind, info.site, info.region);
        }
        let mut batched = hierarchy(RegionClassifier::disabled());
        for window in mix.chunks(1777) {
            batched.access_batch(window);
        }
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(scalar.llc_trace(), batched.llc_trace());
    }

    #[test]
    fn recorded_trace_replays_to_identical_hierarchy_stats() {
        let config = HierarchyConfig::scaled_default().with_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let mut h = Hierarchy::new(config, llc, RegionClassifier::disabled());
        let mut x = 3u64;
        for i in 0..30_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            let addr = (x >> 24) % (4 * 1024 * 1024);
            if i % 3 == 0 {
                h.write(addr, 2, RegionLabel::Property);
            } else {
                h.read(addr, 1, RegionLabel::Property);
            }
        }
        let direct = h.stats();
        let trace = h.into_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let replayed = trace.replay(config.llc, llc);
        assert_eq!(direct, replayed, "replay must be bit-identical");
    }
}
