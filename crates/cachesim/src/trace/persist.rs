//! The versioned on-disk trace format: spill a recorded [`LlcTrace`] to a
//! byte stream and load it back bit-identically.
//!
//! A persisted trace is a self-describing binary file:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────────┐
//! │ header (48 bytes, little-endian)                                     │
//! │   0  magic          8 B   "GRSPTRC\0"                                │
//! │   8  version        u32   TRACE_FORMAT_VERSION                       │
//! │  12  chunk_records  u32   records per full chunk (CHUNK_RECORDS)     │
//! │  16  record_count   u64   total events                               │
//! │  24  demand_count   u64   demand events (≤ record_count)             │
//! │  32  context_len    u32   bytes of the context block                 │
//! │  36  reserved       u32   0                                          │
//! │  40  checksum       u64   FNV-1a over header (checksum zeroed),      │
//! │                           context block and chunk payload            │
//! ├──────────────────────────────────────────────────────────────────────┤
//! │ context block: RecordContext — L1 stats, L2 stats, ABR bounds        │
//! ├──────────────────────────────────────────────────────────────────────┤
//! │ chunk payload, in stream order: per chunk, n × u64 addresses then    │
//! │ n × u32 metadata words (n = chunk_records, except the final tail)    │
//! └──────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The body keeps the in-memory struct-of-arrays layout **chunk-aligned**:
//! every full chunk serializes as one address page followed by one metadata
//! page, so [`LlcTrace::read_from`] reconstructs each frozen
//! [`TraceChunk`](super::TraceChunk) page directly behind its `Arc` — no
//! per-event decode, no re-push through the recording path — and the loaded
//! trace compares equal (`==`) to the trace that was written, chunk layout
//! included. A loaded trace therefore streams through
//! [`LlcTrace::stream_into`](super::LlcTrace::stream_into) exactly like a
//! freshly recorded one.
//!
//! Corruption is never silent: the checksum covers the header (with the
//! checksum field zeroed), the context block and the chunk payload, so a
//! truncated, bit-flipped or short-read file surfaces as a typed
//! [`PersistError`] — a successful load is byte-for-byte the trace that was
//! saved (property-tested in `tests/persist_properties.rs`).

use super::{LlcTrace, RecordContext, TraceChunk, CHUNK_RECORDS};
use crate::addr::Address;
use crate::request::RegionLabel;
use crate::stats::CacheStats;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every persisted trace.
pub const TRACE_MAGIC: [u8; 8] = *b"GRSPTRC\0";

/// Version of the on-disk trace format. Bump on any layout change; loaders
/// reject every version they were not built for.
pub const TRACE_FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 48;
const CHECKSUM_OFFSET: usize = 40;
/// Upper bound on the context block (the ABR bound list is tiny in practice;
/// anything near this limit is corruption, not data).
const MAX_CONTEXT_LEN: u32 = 1 << 24;

/// Why a persisted trace could not be read (or written).
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure (reading, writing, renaming).
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`] — not a trace file.
    BadMagic([u8; 8]),
    /// The file was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The file's chunk geometry does not match this build's
    /// [`CHUNK_RECORDS`], so its pages cannot be mapped into frozen chunks.
    IncompatibleChunkSize {
        /// Records per chunk recorded in the file.
        found: u32,
        /// Records per chunk this build expects.
        expected: u32,
    },
    /// The stream ended before the declared payload was read.
    Truncated {
        /// What was being read when the stream ran dry.
        while_reading: &'static str,
    },
    /// The checksum over header, context and payload did not match.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the bytes actually read.
        computed: u64,
    },
    /// A structurally invalid field (impossible counts or lengths).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "trace i/o error: {err}"),
            PersistError::BadMagic(found) => {
                write!(f, "not a trace file (magic {found:02x?})")
            }
            PersistError::UnsupportedVersion(found) => write!(
                f,
                "unsupported trace format version {found} (this build reads \
                 version {TRACE_FORMAT_VERSION})"
            ),
            PersistError::IncompatibleChunkSize { found, expected } => write!(
                f,
                "incompatible chunk size: file has {found} records/chunk, \
                 this build uses {expected}"
            ),
            PersistError::Truncated { while_reading } => {
                write!(f, "trace file truncated while reading {while_reading}")
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Byte-wise FNV-1a, the format's checksum. Chosen over the simulator's
/// word-batched `FxHasher` because its digest is independent of how the byte
/// stream is split across `update` calls, which lets the writer hash
/// chunk-by-chunk and the reader hash buffer-by-buffer. Public so store
/// layers building on the format (`grasp_core::trace_store`) checksum and
/// fingerprint with the same primitive instead of re-rolling the constants.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds `bytes` into the digest (split-independent).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
    }

    /// The digest over everything folded in so far.
    pub fn finish(self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut hasher = Self::new();
        hasher.update(bytes);
        hasher.finish()
    }
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// A little-endian cursor over the in-memory context block.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Corrupt(format!(
                "context block ends inside {what}"
            ))),
        }
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_cache_stats(buf: &mut Vec<u8>, stats: &CacheStats) {
    put_u64(buf, stats.accesses);
    put_u64(buf, stats.hits);
    put_u64(buf, stats.misses);
    put_u64(buf, stats.evictions);
    put_u64(buf, stats.bypasses);
    put_u64(buf, stats.prefetch_accesses);
    put_u64(buf, stats.prefetch_fills);
    put_u64(buf, stats.writeback_accesses);
    put_u64(buf, stats.writeback_hits);
    for region in RegionLabel::ALL {
        let counters = stats.region(region);
        put_u64(buf, counters.accesses);
        put_u64(buf, counters.misses);
    }
}

fn decode_cache_stats(cursor: &mut Cursor<'_>) -> Result<CacheStats, PersistError> {
    let mut stats = CacheStats::new();
    stats.accesses = cursor.u64("cache stats")?;
    stats.hits = cursor.u64("cache stats")?;
    stats.misses = cursor.u64("cache stats")?;
    stats.evictions = cursor.u64("cache stats")?;
    stats.bypasses = cursor.u64("cache stats")?;
    stats.prefetch_accesses = cursor.u64("cache stats")?;
    stats.prefetch_fills = cursor.u64("cache stats")?;
    stats.writeback_accesses = cursor.u64("cache stats")?;
    stats.writeback_hits = cursor.u64("cache stats")?;
    for region in RegionLabel::ALL {
        let accesses = cursor.u64("region counters")?;
        let misses = cursor.u64("region counters")?;
        stats.set_region_counters(region, accesses, misses);
    }
    Ok(stats)
}

fn encode_context(context: &RecordContext) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 * 152 + 4 + context.abr_bounds.len() * 16);
    encode_cache_stats(&mut buf, &context.l1);
    encode_cache_stats(&mut buf, &context.l2);
    put_u32(&mut buf, context.abr_bounds.len() as u32);
    for &(lo, hi) in &context.abr_bounds {
        put_u64(&mut buf, lo);
        put_u64(&mut buf, hi);
    }
    buf
}

fn decode_context(bytes: &[u8]) -> Result<RecordContext, PersistError> {
    let mut cursor = Cursor::new(bytes);
    let l1 = decode_cache_stats(&mut cursor)?;
    let l2 = decode_cache_stats(&mut cursor)?;
    let bound_count = cursor.u32("ABR bound count")? as usize;
    // Each bound is 16 bytes; the count must fit in what remains.
    if bound_count > (bytes.len() - cursor.pos) / 16 {
        return Err(PersistError::Corrupt(format!(
            "ABR bound count {bound_count} exceeds the context block"
        )));
    }
    let mut abr_bounds = Vec::with_capacity(bound_count);
    for _ in 0..bound_count {
        let lo = cursor.u64("ABR bound")?;
        let hi = cursor.u64("ABR bound")?;
        abr_bounds.push((lo, hi));
    }
    if !cursor.finished() {
        return Err(PersistError::Corrupt(
            "trailing bytes after the context block".to_owned(),
        ));
    }
    Ok(RecordContext { l1, l2, abr_bounds })
}

fn header_bytes(trace: &LlcTrace, context_len: u32, checksum: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&TRACE_MAGIC);
    header[8..12].copy_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(CHUNK_RECORDS as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(trace.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(trace.demand_len() as u64).to_le_bytes());
    header[32..36].copy_from_slice(&context_len.to_le_bytes());
    // 36..40 reserved = 0.
    header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    header
}

/// Serializes one chunk's pages (addresses then metadata words) into `buf`.
fn chunk_payload(chunk: &TraceChunk, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(chunk.len() * 12);
    for &addr in &chunk.addrs {
        buf.extend_from_slice(&addr.to_le_bytes());
    }
    for &meta in &chunk.meta {
        buf.extend_from_slice(&meta.to_le_bytes());
    }
}

fn read_exact(
    reader: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), PersistError> {
    reader.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated {
                while_reading: what,
            }
        } else {
            PersistError::Io(err)
        }
    })
}

impl LlcTrace {
    /// Writes the trace (records and recorded context) to `writer` in the
    /// versioned binary format and returns the number of bytes written.
    ///
    /// The write makes two passes over the in-memory chunks: one to checksum
    /// the stream, one to emit it — nothing is buffered beyond a single
    /// chunk's payload.
    pub fn write_to(&self, writer: &mut impl Write) -> Result<u64, PersistError> {
        let context = encode_context(&self.context);
        let context_len = u32::try_from(context.len()).map_err(|_| {
            PersistError::Corrupt("context block exceeds u32::MAX bytes".to_owned())
        })?;

        // Pass 1: checksum header (checksum field zeroed), context, payload.
        let mut hasher = Fnv64::new();
        hasher.update(&header_bytes(self, context_len, 0));
        hasher.update(&context);
        let mut buf = Vec::new();
        for chunk in self.chunks() {
            chunk_payload(chunk, &mut buf);
            hasher.update(&buf);
        }
        let checksum = hasher.finish();

        // Pass 2: emit.
        let mut written = 0u64;
        let header = header_bytes(self, context_len, checksum);
        writer.write_all(&header)?;
        written += header.len() as u64;
        writer.write_all(&context)?;
        written += context.len() as u64;
        for chunk in self.chunks() {
            chunk_payload(chunk, &mut buf);
            writer.write_all(&buf)?;
            written += buf.len() as u64;
        }
        Ok(written)
    }

    /// Reads a trace previously written by [`LlcTrace::write_to`].
    ///
    /// Chunks are rebuilt page-at-a-time straight into frozen
    /// `Arc<TraceChunk>`s — no per-event decode — and the loaded trace is
    /// `==` to the written one, chunk layout included. Every structural
    /// problem (wrong magic, foreign version or chunk geometry, truncation,
    /// bit flips anywhere in the file) surfaces as a typed [`PersistError`];
    /// a trace is only returned when the checksum over everything read
    /// matches.
    ///
    /// Reads exactly the persisted bytes and no further, so a trace block
    /// can be embedded inside a larger stream (the trace store appends its
    /// own metadata around it).
    pub fn read_from(reader: &mut impl Read) -> Result<LlcTrace, PersistError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact(reader, &mut header, "header")?;

        let magic: [u8; 8] = header[0..8].try_into().expect("8 bytes");
        if magic != TRACE_MAGIC {
            return Err(PersistError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != TRACE_FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let chunk_records = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if chunk_records as usize != CHUNK_RECORDS {
            return Err(PersistError::IncompatibleChunkSize {
                found: chunk_records,
                expected: CHUNK_RECORDS as u32,
            });
        }
        let record_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let demand_count = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        if demand_count > record_count {
            return Err(PersistError::Corrupt(format!(
                "demand count {demand_count} exceeds record count {record_count}"
            )));
        }
        let record_count = usize::try_from(record_count)
            .map_err(|_| PersistError::Corrupt("record count exceeds usize".to_owned()))?;
        let context_len = u32::from_le_bytes(header[32..36].try_into().expect("4 bytes"));
        if context_len > MAX_CONTEXT_LEN {
            return Err(PersistError::Corrupt(format!(
                "context block of {context_len} bytes is implausibly large"
            )));
        }
        let reserved = u32::from_le_bytes(header[36..40].try_into().expect("4 bytes"));
        if reserved != 0 {
            return Err(PersistError::Corrupt(format!(
                "reserved header field is {reserved}, expected 0"
            )));
        }
        let stored_checksum = u64::from_le_bytes(
            header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8]
                .try_into()
                .expect("8 bytes"),
        );

        let mut hasher = Fnv64::new();
        header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&[0u8; 8]);
        hasher.update(&header);

        let mut context_bytes = vec![0u8; context_len as usize];
        read_exact(reader, &mut context_bytes, "context block")?;
        hasher.update(&context_bytes);
        let context = decode_context(&context_bytes)?;

        // Rebuild the chunk pages: full chunks become frozen `Arc` pages, a
        // partial tail becomes the in-progress chunk — exactly the layout
        // appending `record_count` events produces. The chunk directory is
        // deliberately *not* pre-sized from the header: `record_count` is
        // attacker/corruption-controlled until the checksum is verified, so
        // every allocation must stay proportional to bytes actually read — a
        // corrupt count then dies as `Truncated` at the first short chunk
        // read instead of aborting in the allocator.
        let full_chunks = record_count / CHUNK_RECORDS;
        let tail = record_count % CHUNK_RECORDS;
        let mut frozen = Vec::new();
        let mut buf = vec![0u8; CHUNK_RECORDS * 12];
        let mut read_chunk =
            |records: usize, buf: &mut Vec<u8>| -> Result<TraceChunk, PersistError> {
                let bytes = &mut buf[..records * 12];
                read_exact(reader, bytes, "chunk payload")?;
                hasher.update(bytes);
                let (addr_bytes, meta_bytes) = bytes.split_at(records * 8);
                let mut chunk = TraceChunk::with_capacity(records);
                chunk.addrs.extend(
                    addr_bytes
                        .chunks_exact(8)
                        .map(|b| Address::from_le_bytes(b.try_into().expect("8 bytes"))),
                );
                chunk.meta.extend(
                    meta_bytes
                        .chunks_exact(4)
                        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes"))),
                );
                Ok(chunk)
            };
        for _ in 0..full_chunks {
            frozen.push(Arc::new(read_chunk(CHUNK_RECORDS, &mut buf)?));
        }
        let current = if tail > 0 {
            read_chunk(tail, &mut buf)?
        } else {
            TraceChunk::default()
        };

        let computed = hasher.finish();
        if computed != stored_checksum {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }

        let trace = LlcTrace {
            frozen,
            current,
            len: record_count,
            demand_len: demand_count as usize,
            context,
        };
        // The header's demand count is covered by the checksum, but cross-check
        // it against the records so a *writer* bug can never produce a trace
        // whose demand view disagrees with its stream.
        let actual_demands = trace.demand_accesses().count();
        if actual_demands != trace.demand_len {
            return Err(PersistError::Corrupt(format!(
                "header demand count {} disagrees with the {} demand records in the stream",
                trace.demand_len, actual_demands
            )));
        }
        Ok(trace)
    }

    /// Writes the trace to `path` via [`LlcTrace::write_to`] (buffered).
    /// Returns the number of bytes written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        let written = self.write_to(&mut writer)?;
        writer.flush()?;
        Ok(written)
    }

    /// Loads a trace from `path` via [`LlcTrace::read_from`] (buffered).
    pub fn load(path: impl AsRef<Path>) -> Result<LlcTrace, PersistError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        LlcTrace::read_from(&mut reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::hint::ReuseHint;
    use crate::policy::lru::Lru;
    use crate::request::AccessInfo;

    /// A mixed stream: hot/cold demand reads and writes with varying hints,
    /// sites and regions, plus periodic writebacks and flush markers.
    fn sample_trace(events: usize) -> LlcTrace {
        let mut trace = LlcTrace::new();
        for i in 0..events {
            let block = if i % 3 == 0 { i % 64 } else { 512 + i } as u64;
            let mut info = AccessInfo::read(block * 64)
                .with_site((i % 11) as u16)
                .with_hint(ReuseHint::decode((i % 4) as u8))
                .with_region(RegionLabel::ALL[i % RegionLabel::ALL.len()]);
            if i % 5 == 0 {
                info.kind = crate::request::AccessKind::Write;
            }
            if i % 7 == 0 {
                trace.push_prefetch(&info);
            } else {
                trace.push(&info);
            }
            if i % 13 == 0 {
                trace.push_writeback(info.addr);
            }
            if i % 97 == 0 {
                trace.push_flush();
            }
        }
        let mut context = RecordContext::default();
        context.l1.record(RegionLabel::Property, false);
        context.l1.record(RegionLabel::EdgeArray, true);
        context.l2.record(RegionLabel::Property, false);
        context.abr_bounds = vec![(64, 1 << 20), (1 << 21, 1 << 22)];
        trace.set_context(context);
        trace
    }

    fn write_to_vec(trace: &LlcTrace) -> Vec<u8> {
        let mut bytes = Vec::new();
        let written = trace.write_to(&mut bytes).expect("write succeeds");
        assert_eq!(written as usize, bytes.len());
        bytes
    }

    #[test]
    fn roundtrip_preserves_everything_including_chunk_layout() {
        for events in [0, 1, 5, CHUNK_RECORDS - 1, CHUNK_RECORDS, CHUNK_RECORDS + 3] {
            let trace = sample_trace(events);
            let bytes = write_to_vec(&trace);
            let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
            assert_eq!(loaded, trace, "{events} events");
            assert_eq!(loaded.len(), trace.len());
            assert_eq!(loaded.demand_len(), trace.demand_len());
            assert_eq!(loaded.context(), trace.context());
            assert_eq!(
                loaded.chunks().count(),
                trace.chunks().count(),
                "chunk layout must be reproduced"
            );
        }
    }

    #[test]
    fn loaded_trace_replays_bit_identically() {
        let trace = sample_trace(4000);
        let bytes = write_to_vec(&trace);
        let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
        let config = CacheConfig::new(64 * 128, 8, 64);
        let original = trace.replay(config, Lru::new(config.sets(), config.ways));
        let reloaded = loaded.replay(config, Lru::new(config.sets(), config.ways));
        assert_eq!(original, reloaded);
    }

    #[test]
    fn save_and_load_via_files() {
        let trace = sample_trace(300);
        let path = std::env::temp_dir().join(format!(
            "grasp-persist-test-{}-{:?}.trace",
            std::process::id(),
            std::thread::current().id()
        ));
        let written = trace.save(&path).expect("save");
        assert_eq!(written, std::fs::metadata(&path).expect("metadata").len());
        let loaded = LlcTrace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[0] ^= 0xFF;
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[8..12].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::UnsupportedVersion(v)) => {
                assert_eq!(v, TRACE_FORMAT_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn foreign_chunk_geometry_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[12..16].copy_from_slice(&((CHUNK_RECORDS as u32) / 2).to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::IncompatibleChunkSize { found, expected }) => {
                assert_eq!(found as usize, CHUNK_RECORDS / 2);
                assert_eq!(expected as usize, CHUNK_RECORDS);
            }
            other => panic!("expected IncompatibleChunkSize, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_boundary() {
        let bytes = write_to_vec(&sample_trace(200));
        // Header, context and payload truncations all surface as Truncated.
        for cut in [0, 10, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
            match LlcTrace::read_from(&mut &bytes[..cut]) {
                Err(PersistError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let trace = sample_trace(500);
        let bytes = write_to_vec(&trace);
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        match LlcTrace::read_from(&mut flipped.as_slice()) {
            Err(PersistError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_count_tampering_cannot_pass_the_checksum() {
        // Shrinking the record count re-frames the payload; the checksum
        // (which covers the header) must catch it even though the framing
        // itself stays structurally valid.
        let bytes = write_to_vec(&sample_trace(CHUNK_RECORDS + 100));
        let mut tampered = bytes.clone();
        tampered[16..24].copy_from_slice(&(100u64).to_le_bytes());
        tampered[24..32].copy_from_slice(&(50u64).to_le_bytes());
        assert!(
            LlcTrace::read_from(&mut tampered.as_slice()).is_err(),
            "tampered counts must never load"
        );
    }

    #[test]
    fn absurd_record_count_is_truncation_not_an_allocator_abort() {
        // `record_count` is unvalidated until the checksum passes, so the
        // reader must never size an allocation from it: a corrupted count in
        // the exabyte range has to surface as a typed error.
        let mut bytes = write_to_vec(&sample_trace(100));
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        bytes[24..32].copy_from_slice(&0u64.to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn reserved_field_must_be_zero() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[36] = 1;
        assert!(matches!(
            LlcTrace::read_from(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn trace_block_is_embeddable_in_a_larger_stream() {
        let trace = sample_trace(150);
        let mut bytes = write_to_vec(&trace);
        let trailer = b"store metadata lives here";
        bytes.extend_from_slice(trailer);
        let mut reader = bytes.as_slice();
        let loaded = LlcTrace::read_from(&mut reader).expect("embedded read");
        assert_eq!(loaded, trace);
        assert_eq!(reader, trailer, "reader must stop exactly after the trace");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = LlcTrace::new();
        let bytes = write_to_vec(&trace);
        assert_eq!(
            bytes.len(),
            HEADER_LEN + encode_context(trace.context()).len()
        );
        let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
        assert_eq!(loaded, trace);
        assert!(loaded.is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let err = PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(err.to_string().contains("checksum"));
        assert!(PersistError::Truncated {
            while_reading: "header"
        }
        .to_string()
        .contains("header"));
        let io: PersistError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }

    /// Ensures the demand-count cross-check rejects internally inconsistent
    /// files even when the checksum is recomputed to match (a defence against
    /// writer bugs, not just bit rot).
    #[test]
    fn consistent_checksum_with_wrong_demand_count_is_still_rejected() {
        let mut trace = sample_trace(50);
        // Corrupt the in-memory counter, then persist: the file is
        // checksum-consistent but internally wrong.
        trace.demand_len += 1;
        let bytes = write_to_vec(&trace);
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("demand")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn checksum_is_split_independent() {
        let mut one = Fnv64::new();
        one.update(b"hello world");
        let mut two = Fnv64::new();
        two.update(b"hello");
        two.update(b" world");
        assert_eq!(one.finish(), two.finish());
    }

    #[test]
    fn format_constants_are_stable() {
        // These are on-disk compatibility promises; changing them must be a
        // deliberate format bump, not a refactor side-effect.
        assert_eq!(TRACE_MAGIC, *b"GRSPTRC\0");
        assert_eq!(TRACE_FORMAT_VERSION, 1);
        assert_eq!(HEADER_LEN, 48);
    }

    #[test]
    fn encode_matches_access_info_roundtrip() {
        // Sanity: persisted payload words are the in-memory encoding.
        let info = AccessInfo::read(0x1240).with_site(3);
        let mut trace = LlcTrace::new();
        trace.push(&info);
        let bytes = write_to_vec(&trace);
        let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
        assert_eq!(loaded.get(0), trace.get(0));
    }
}
