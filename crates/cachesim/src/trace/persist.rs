//! The versioned on-disk trace format: spill a recorded [`LlcTrace`] to a
//! byte stream and load it back bit-identically.
//!
//! A persisted trace is a self-describing binary file:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────────┐
//! │ header (48 bytes, little-endian)                                     │
//! │   0  magic          8 B   "GRSPTRC\0"                                │
//! │   8  version        u32   1 (raw) or 2 (codec-framed)                │
//! │  12  chunk_records  u32   records per full chunk (CHUNK_RECORDS)     │
//! │  16  record_count   u64   total events                               │
//! │  24  demand_count   u64   demand events (≤ record_count)             │
//! │  32  context_len    u32   bytes of the context block                 │
//! │  36  codec          u32   [`Codec`] of the body (v1: reserved = 0,   │
//! │                           which reads as `Codec::Raw`)               │
//! │  40  checksum       u64   FNV-1a over header (checksum zeroed),      │
//! │                           context block and chunk payload            │
//! ├──────────────────────────────────────────────────────────────────────┤
//! │ context block: RecordContext — L1 stats, L2 stats, ABR bounds        │
//! ├──────────────────────────────────────────────────────────────────────┤
//! │ chunk payload, in stream order, one frame per chunk (see below)      │
//! └──────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! # Codecs
//!
//! The body is encoded per chunk, per column, by the [`Codec`] named in the
//! header:
//!
//! * **`Raw`** (format **v1**, the PR 4 layout, written byte-for-byte
//!   unchanged): each chunk is one page of `n × u64` addresses followed by
//!   one page of `n × u32` metadata words — 12 B/record.
//! * **`DeltaVarint`** (format **v2**): each chunk is a `u32` frame length
//!   followed by that many payload bytes, holding
//!   1. the **address column** as zigzag-encoded wrapping deltas in LEB128
//!      varints (graph-analytics streams are heavily clustered, so most
//!      deltas fit 1–3 bytes; the delta state resets at every chunk
//!      boundary, keeping chunks independently decodable),
//!   2. the **metadata column** as a per-chunk dictionary (the distinct
//!      kind/flag/hint/region/site words in first-occurrence order, LEB128)
//!      followed by one `⌈log₂ dict⌉`-bit index per record, bit-packed
//!      LSB-first (the column's cardinality is tiny — a handful of sites ×
//!      event kinds — so indices cost a fraction of a byte).
//!
//! Both codecs keep the in-memory struct-of-arrays layout **chunk-aligned**:
//! every chunk decodes as one unit straight into a frozen
//! [`TraceChunk`] page behind its `Arc` — no per-event
//! materialization, no re-push through the recording path — and the loaded
//! trace compares equal (`==`) to the trace that was written, chunk layout
//! included. A loaded trace therefore streams through
//! [`LlcTrace::stream_into`](super::LlcTrace::stream_into) exactly like a
//! freshly recorded one.
//!
//! [`LlcTrace::read_from`] dispatches on **version + codec**: v1 files (and
//! `Raw`-codec writes, which still emit the v1 byte format) load exactly as
//! before, v2 frames decompress chunk-at-a-time.
//!
//! Corruption is never silent: the checksum covers the header (with the
//! checksum field zeroed), the context block and the chunk payload — frame
//! lengths included — so a truncated, bit-flipped or short-read file
//! surfaces as a typed [`PersistError`] — a successful load is byte-for-byte
//! the trace that was saved (property-tested in
//! `tests/persist_properties.rs` for both codecs).

use super::{LlcTrace, RecordContext, TraceChunk, CHUNK_RECORDS};
use crate::addr::Address;
use crate::request::RegionLabel;
use crate::stats::CacheStats;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every persisted trace.
pub const TRACE_MAGIC: [u8; 8] = *b"GRSPTRC\0";

/// Newest version of the on-disk trace format. Loaders read every version up
/// to this one; writers emit the version their [`Codec`] belongs to
/// ([`Codec::format_version`]). Bump on any layout change.
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// The raw (uncompressed) v1 layout, kept bit-compatible with PR 4 so
/// pre-codec stores and CI caches stay loadable.
const TRACE_FORMAT_V1: u32 = 1;

const HEADER_LEN: usize = 48;
const CODEC_OFFSET: usize = 36;
const CHECKSUM_OFFSET: usize = 40;
/// Upper bound on the context block (the ABR bound list is tiny in practice;
/// anything near this limit is corruption, not data).
const MAX_CONTEXT_LEN: u32 = 1 << 24;

/// How the chunk payload encodes the struct-of-arrays body (see the module
/// docs for the per-codec layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Codec {
    /// 12 B/record SoA pages — the v1 format, written byte-for-byte as PR 4
    /// did.
    Raw,
    /// Per-chunk delta + LEB128 varint addresses and dictionary + bit-packed
    /// metadata — the v2 format, several times smaller on clustered
    /// graph-analytics streams.
    #[default]
    DeltaVarint,
}

impl Codec {
    /// Every codec, the default (preferred) one first — the order store
    /// lookups fall back through.
    pub const ALL: [Codec; 2] = [Codec::DeltaVarint, Codec::Raw];

    /// Stable human-readable name (the `GRASP_TRACE_CODEC` vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::DeltaVarint => "delta-varint",
        }
    }

    /// Parses a label as accepted from environment knobs and CLI flags.
    pub fn from_label(label: &str) -> Option<Codec> {
        match label.trim().to_ascii_lowercase().as_str() {
            "raw" | "v1" => Some(Codec::Raw),
            "delta-varint" | "deltavarint" | "delta_varint" | "dv" | "v2" => {
                Some(Codec::DeltaVarint)
            }
            _ => None,
        }
    }

    /// The format version files written with this codec carry (and the
    /// version suffix store entries are keyed by).
    pub fn format_version(self) -> u32 {
        match self {
            Codec::Raw => TRACE_FORMAT_V1,
            Codec::DeltaVarint => TRACE_FORMAT_VERSION,
        }
    }

    /// The header's codec field value (byte 36 of the trace header).
    pub fn code(self) -> u32 {
        match self {
            Codec::Raw => 0,
            Codec::DeltaVarint => 1,
        }
    }

    /// The inverse of [`Codec::code`] — the one place the header field maps
    /// back to a codec (store layers peeking at entry headers reuse it).
    pub fn from_code(code: u32) -> Option<Codec> {
        match code {
            0 => Some(Codec::Raw),
            1 => Some(Codec::DeltaVarint),
            _ => None,
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a persisted trace could not be read (or written).
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure (reading, writing, renaming).
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`] — not a trace file.
    BadMagic([u8; 8]),
    /// The file was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The file's chunk geometry does not match this build's
    /// [`CHUNK_RECORDS`], so its pages cannot be mapped into frozen chunks.
    IncompatibleChunkSize {
        /// Records per chunk recorded in the file.
        found: u32,
        /// Records per chunk this build expects.
        expected: u32,
    },
    /// The stream ended before the declared payload was read.
    Truncated {
        /// What was being read when the stream ran dry.
        while_reading: &'static str,
    },
    /// The checksum over header, context and payload did not match.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed over the bytes actually read.
        computed: u64,
    },
    /// A structurally invalid field (impossible counts, lengths, varints or
    /// dictionary indices).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "trace i/o error: {err}"),
            PersistError::BadMagic(found) => {
                write!(f, "not a trace file (magic {found:02x?})")
            }
            PersistError::UnsupportedVersion(found) => write!(
                f,
                "unsupported trace format version {found} (this build reads \
                 versions 1..={TRACE_FORMAT_VERSION})"
            ),
            PersistError::IncompatibleChunkSize { found, expected } => write!(
                f,
                "incompatible chunk size: file has {found} records/chunk, \
                 this build uses {expected}"
            ),
            PersistError::Truncated { while_reading } => {
                write!(f, "trace file truncated while reading {while_reading}")
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Byte-wise FNV-1a, the format's checksum. Chosen over the simulator's
/// word-batched `FxHasher` because its digest is independent of how the byte
/// stream is split across `update` calls, which lets the writer hash
/// chunk-by-chunk and the reader hash buffer-by-buffer. Public so store
/// layers building on the format (`grasp_core::trace_store`) checksum and
/// fingerprint with the same primitive instead of re-rolling the constants.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds `bytes` into the digest (split-independent).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
    }

    /// The digest over everything folded in so far.
    pub fn finish(self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut hasher = Self::new();
        hasher.update(bytes);
        hasher.finish()
    }
}

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

// ---- varint / zigzag / bit-packing primitives of the v2 codec ----

/// Maps a wrapping delta to a small varint for small forward *and* backward
/// jumps: +1 → 2, −1 → 1, +64 → 128.
#[inline]
fn zigzag(delta: u64) -> u64 {
    let signed = delta as i64;
    ((signed << 1) ^ (signed >> 63)) as u64
}

#[inline]
fn unzigzag(encoded: u64) -> u64 {
    (encoded >> 1) ^ (encoded & 1).wrapping_neg()
}

/// Appends `value` as a LEB128 varint (1–10 bytes).
#[inline]
fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from `bytes` at `*pos`, advancing the cursor.
/// Every malformed shape — running off the buffer, or more than 64 bits of
/// payload — is a typed [`PersistError::Corrupt`], never a panic or a
/// silently wrapped value.
fn get_varint(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, PersistError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(PersistError::Corrupt(format!(
                "chunk payload ends inside {what}"
            )));
        };
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err(PersistError::Corrupt(format!("varint overflow in {what}")));
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(PersistError::Corrupt(format!("varint overflow in {what}")));
        }
    }
}

/// Bits needed to index a dictionary of `len` entries (0 for a single-entry
/// dictionary: the index stream is empty, every record is entry 0).
#[inline]
fn index_width(len: usize) -> u32 {
    debug_assert!(len >= 1);
    usize::BITS - (len - 1).leading_zeros()
}

/// A little-endian cursor over the in-memory context block.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(PersistError::Corrupt(format!(
                "context block ends inside {what}"
            ))),
        }
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_cache_stats(buf: &mut Vec<u8>, stats: &CacheStats) {
    put_u64(buf, stats.accesses);
    put_u64(buf, stats.hits);
    put_u64(buf, stats.misses);
    put_u64(buf, stats.evictions);
    put_u64(buf, stats.bypasses);
    put_u64(buf, stats.prefetch_accesses);
    put_u64(buf, stats.prefetch_fills);
    put_u64(buf, stats.writeback_accesses);
    put_u64(buf, stats.writeback_hits);
    for region in RegionLabel::ALL {
        let counters = stats.region(region);
        put_u64(buf, counters.accesses);
        put_u64(buf, counters.misses);
    }
}

fn decode_cache_stats(cursor: &mut Cursor<'_>) -> Result<CacheStats, PersistError> {
    let mut stats = CacheStats::new();
    stats.accesses = cursor.u64("cache stats")?;
    stats.hits = cursor.u64("cache stats")?;
    stats.misses = cursor.u64("cache stats")?;
    stats.evictions = cursor.u64("cache stats")?;
    stats.bypasses = cursor.u64("cache stats")?;
    stats.prefetch_accesses = cursor.u64("cache stats")?;
    stats.prefetch_fills = cursor.u64("cache stats")?;
    stats.writeback_accesses = cursor.u64("cache stats")?;
    stats.writeback_hits = cursor.u64("cache stats")?;
    for region in RegionLabel::ALL {
        let accesses = cursor.u64("region counters")?;
        let misses = cursor.u64("region counters")?;
        stats.set_region_counters(region, accesses, misses);
    }
    Ok(stats)
}

fn encode_context(context: &RecordContext) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 * 152 + 4 + context.abr_bounds.len() * 16);
    encode_cache_stats(&mut buf, &context.l1);
    encode_cache_stats(&mut buf, &context.l2);
    put_u32(&mut buf, context.abr_bounds.len() as u32);
    for &(lo, hi) in &context.abr_bounds {
        put_u64(&mut buf, lo);
        put_u64(&mut buf, hi);
    }
    buf
}

fn decode_context(bytes: &[u8]) -> Result<RecordContext, PersistError> {
    let mut cursor = Cursor::new(bytes);
    let l1 = decode_cache_stats(&mut cursor)?;
    let l2 = decode_cache_stats(&mut cursor)?;
    let bound_count = cursor.u32("ABR bound count")? as usize;
    // Each bound is 16 bytes; the count must fit in what remains.
    if bound_count > (bytes.len() - cursor.pos) / 16 {
        return Err(PersistError::Corrupt(format!(
            "ABR bound count {bound_count} exceeds the context block"
        )));
    }
    let mut abr_bounds = Vec::with_capacity(bound_count);
    for _ in 0..bound_count {
        let lo = cursor.u64("ABR bound")?;
        let hi = cursor.u64("ABR bound")?;
        abr_bounds.push((lo, hi));
    }
    if !cursor.finished() {
        return Err(PersistError::Corrupt(
            "trailing bytes after the context block".to_owned(),
        ));
    }
    Ok(RecordContext { l1, l2, abr_bounds })
}

fn header_bytes(
    trace: &LlcTrace,
    codec: Codec,
    context_len: u32,
    checksum: u64,
) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&TRACE_MAGIC);
    header[8..12].copy_from_slice(&codec.format_version().to_le_bytes());
    header[12..16].copy_from_slice(&(CHUNK_RECORDS as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(trace.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(trace.demand_len() as u64).to_le_bytes());
    header[32..36].copy_from_slice(&context_len.to_le_bytes());
    // The codec field doubles as v1's reserved-zero word: Codec::Raw is 0.
    header[CODEC_OFFSET..CODEC_OFFSET + 4].copy_from_slice(&codec.code().to_le_bytes());
    header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    header
}

/// Serializes one chunk's raw v1 pages (addresses then metadata words) into
/// `buf`.
fn chunk_payload_raw(chunk: &TraceChunk, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(chunk.len() * 12);
    for &addr in &chunk.addrs {
        buf.extend_from_slice(&addr.to_le_bytes());
    }
    for &meta in &chunk.meta {
        buf.extend_from_slice(&meta.to_le_bytes());
    }
}

/// Serializes one chunk as a v2 delta+varint frame (length prefix included)
/// into `buf`. `dict_scratch` carries the dictionary map across chunks to
/// reuse its allocation; it is cleared per chunk.
fn chunk_payload_delta_varint(
    chunk: &TraceChunk,
    buf: &mut Vec<u8>,
    dict_scratch: &mut HashMap<u32, u32>,
) {
    buf.clear();
    buf.extend_from_slice(&[0u8; 4]); // frame length, patched below
                                      // Address column: zigzag wrapping deltas, LEB128. The previous-address
                                      // state starts at 0 in every chunk, so chunks decode independently.
    let mut prev: Address = 0;
    for &addr in &chunk.addrs {
        put_varint(buf, zigzag(addr.wrapping_sub(prev)));
        prev = addr;
    }
    // Metadata column: dictionary of distinct words in first-occurrence
    // order, then one bit-packed dictionary index per record.
    dict_scratch.clear();
    let mut dict: Vec<u32> = Vec::new();
    let mut indices: Vec<u32> = Vec::with_capacity(chunk.meta.len());
    for &meta in &chunk.meta {
        let next = dict.len() as u32;
        let index = *dict_scratch.entry(meta).or_insert_with(|| {
            dict.push(meta);
            next
        });
        indices.push(index);
    }
    put_varint(buf, dict.len() as u64);
    for &word in &dict {
        put_varint(buf, u64::from(word));
    }
    if !dict.is_empty() {
        let width = index_width(dict.len());
        if width > 0 {
            let mut acc: u64 = 0;
            let mut filled: u32 = 0;
            for &index in &indices {
                acc |= u64::from(index) << filled;
                filled += width;
                while filled >= 8 {
                    buf.push((acc & 0xff) as u8);
                    acc >>= 8;
                    filled -= 8;
                }
            }
            if filled > 0 {
                buf.push((acc & 0xff) as u8);
            }
        }
    }
    let frame_len = (buf.len() - 4) as u32;
    buf[0..4].copy_from_slice(&frame_len.to_le_bytes());
}

/// Worst-case v2 frame payload for `records` records: 10-byte address
/// varints, a full-cardinality dictionary (≤ 5 bytes/entry) and 16-bit
/// packed indices, plus the dictionary-length varint. Anything larger in a
/// frame header is corruption, not data.
fn max_frame_len(records: usize) -> usize {
    records * (10 + 5 + 2) + 10
}

fn read_exact(
    reader: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), PersistError> {
    reader.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            PersistError::Truncated {
                while_reading: what,
            }
        } else {
            PersistError::Io(err)
        }
    })
}

/// Reads one raw v1 chunk (two SoA pages) into a fresh chunk.
fn read_chunk_raw(
    reader: &mut impl Read,
    hasher: &mut Fnv64,
    records: usize,
    buf: &mut Vec<u8>,
) -> Result<TraceChunk, PersistError> {
    buf.resize(records * 12, 0);
    let bytes = &mut buf[..records * 12];
    read_exact(reader, bytes, "chunk payload")?;
    hasher.update(bytes);
    let (addr_bytes, meta_bytes) = bytes.split_at(records * 8);
    let mut chunk = TraceChunk::with_capacity(records);
    chunk.addrs.extend(
        addr_bytes
            .chunks_exact(8)
            .map(|b| Address::from_le_bytes(b.try_into().expect("8 bytes"))),
    );
    chunk.meta.extend(
        meta_bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes"))),
    );
    Ok(chunk)
}

/// Reads one v2 delta+varint frame and decompresses it into a fresh chunk.
/// Every structural defect — an implausible frame length, a malformed
/// varint, a dictionary index past the dictionary, leftover payload bytes —
/// is a typed error, and nothing is allocated beyond the frame's own bytes
/// plus one bounded chunk.
fn read_chunk_delta_varint(
    reader: &mut impl Read,
    hasher: &mut Fnv64,
    records: usize,
    buf: &mut Vec<u8>,
) -> Result<TraceChunk, PersistError> {
    let mut len_bytes = [0u8; 4];
    read_exact(reader, &mut len_bytes, "chunk frame length")?;
    hasher.update(&len_bytes);
    let frame_len = u32::from_le_bytes(len_bytes) as usize;
    if (frame_len == 0 && records > 0) || frame_len > max_frame_len(records) {
        return Err(PersistError::Corrupt(format!(
            "chunk frame of {frame_len} bytes is implausible for {records} records"
        )));
    }
    buf.resize(frame_len, 0);
    let bytes = &mut buf[..frame_len];
    read_exact(reader, bytes, "chunk payload")?;
    hasher.update(bytes);

    let mut chunk = TraceChunk::with_capacity(records);
    let mut pos = 0usize;
    let mut prev: Address = 0;
    for _ in 0..records {
        let delta = unzigzag(get_varint(bytes, &mut pos, "address delta")?);
        prev = prev.wrapping_add(delta);
        chunk.addrs.push(prev);
    }
    let dict_len = get_varint(bytes, &mut pos, "metadata dictionary length")? as usize;
    if dict_len == 0 || dict_len > records {
        return Err(PersistError::Corrupt(format!(
            "metadata dictionary of {dict_len} entries is implausible for {records} records"
        )));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let word = get_varint(bytes, &mut pos, "metadata dictionary entry")?;
        let word = u32::try_from(word).map_err(|_| {
            PersistError::Corrupt("metadata dictionary entry exceeds u32".to_owned())
        })?;
        dict.push(word);
    }
    let width = index_width(dict_len);
    if width == 0 {
        chunk.meta.resize(records, dict[0]);
    } else {
        let index_bytes = (records * width as usize).div_ceil(8);
        let end = pos
            .checked_add(index_bytes)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                PersistError::Corrupt("chunk payload ends inside metadata indices".to_owned())
            })?;
        let packed = &bytes[pos..end];
        pos = end;
        let mut acc: u64 = 0;
        let mut filled: u32 = 0;
        let mut next_byte = 0usize;
        let mask = (1u64 << width) - 1;
        for _ in 0..records {
            while filled < width {
                acc |= u64::from(packed[next_byte]) << filled;
                next_byte += 1;
                filled += 8;
            }
            let index = (acc & mask) as usize;
            acc >>= width;
            filled -= width;
            let &word = dict.get(index).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "metadata index {index} exceeds the {dict_len}-entry dictionary"
                ))
            })?;
            chunk.meta.push(word);
        }
    }
    if pos != frame_len {
        return Err(PersistError::Corrupt(format!(
            "{} trailing byte(s) after the chunk payload",
            frame_len - pos
        )));
    }
    Ok(chunk)
}

impl LlcTrace {
    /// Writes the trace with the default codec ([`Codec::DeltaVarint`]) —
    /// see [`LlcTrace::write_to_with`].
    pub fn write_to(&self, writer: &mut impl Write) -> Result<u64, PersistError> {
        self.write_to_with(writer, Codec::default())
    }

    /// Writes the trace (records and recorded context) to `writer` in the
    /// versioned binary format under `codec` and returns the number of bytes
    /// written. [`Codec::Raw`] emits the v1 byte format unchanged;
    /// [`Codec::DeltaVarint`] emits v2 compressed frames.
    ///
    /// The checksum lands in the header, so the payload is produced before
    /// the header can be emitted. Raw frames are a cheap copy of the SoA
    /// pages: they are encoded twice (checksum pass, emit pass) so nothing
    /// beyond one chunk's payload is ever buffered. Compressed frames are
    /// expensive to produce, so they are encoded **once** into a body buffer
    /// (the compressed size — several times smaller than the in-memory trace
    /// this method is called on) and emitted from it.
    pub fn write_to_with(
        &self,
        writer: &mut impl Write,
        codec: Codec,
    ) -> Result<u64, PersistError> {
        let context = encode_context(&self.context);
        let context_len = u32::try_from(context.len()).map_err(|_| {
            PersistError::Corrupt("context block exceeds u32::MAX bytes".to_owned())
        })?;

        let mut hasher = Fnv64::new();
        hasher.update(&header_bytes(self, codec, context_len, 0));
        hasher.update(&context);

        let mut written = 0u64;
        match codec {
            Codec::Raw => {
                // Pass 1: checksum the raw frames chunk-by-chunk.
                let mut buf = Vec::new();
                for chunk in self.chunks() {
                    chunk_payload_raw(chunk, &mut buf);
                    hasher.update(&buf);
                }
                // Pass 2: emit header, context, and the re-encoded frames.
                let header = header_bytes(self, codec, context_len, hasher.finish());
                writer.write_all(&header)?;
                written += header.len() as u64;
                writer.write_all(&context)?;
                written += context.len() as u64;
                for chunk in self.chunks() {
                    chunk_payload_raw(chunk, &mut buf);
                    writer.write_all(&buf)?;
                    written += buf.len() as u64;
                }
            }
            Codec::DeltaVarint => {
                // Single compression pass into the body buffer, then emit.
                let mut body = Vec::new();
                let mut frame = Vec::new();
                let mut dict_scratch = HashMap::new();
                for chunk in self.chunks() {
                    chunk_payload_delta_varint(chunk, &mut frame, &mut dict_scratch);
                    body.extend_from_slice(&frame);
                }
                hasher.update(&body);
                let header = header_bytes(self, codec, context_len, hasher.finish());
                writer.write_all(&header)?;
                written += header.len() as u64;
                writer.write_all(&context)?;
                written += context.len() as u64;
                writer.write_all(&body)?;
                written += body.len() as u64;
            }
        }
        Ok(written)
    }

    /// Reads a trace previously written by [`LlcTrace::write_to_with`] (any
    /// supported version and codec) — see [`LlcTrace::read_from_with_codec`].
    pub fn read_from(reader: &mut impl Read) -> Result<LlcTrace, PersistError> {
        Self::read_from_with_codec(reader).map(|(trace, _)| trace)
    }

    /// Reads a trace and reports the [`Codec`] the file was encoded with.
    ///
    /// Dispatches on the header's version + codec: v1 files are raw SoA
    /// pages; v2 files decompress per-chunk frames. Chunks are rebuilt
    /// chunk-at-a-time straight into frozen `Arc<TraceChunk>`s — no
    /// per-event materialization — and the loaded trace is `==` to the
    /// written one, chunk layout included. Every structural problem (wrong
    /// magic, foreign version, codec or chunk geometry, truncation,
    /// malformed compression, bit flips anywhere in the file) surfaces as a
    /// typed [`PersistError`]; a trace is only returned when the checksum
    /// over everything read matches.
    ///
    /// Reads exactly the persisted bytes and no further, so a trace block
    /// can be embedded inside a larger stream (the trace store appends its
    /// own metadata around it).
    pub fn read_from_with_codec(reader: &mut impl Read) -> Result<(LlcTrace, Codec), PersistError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact(reader, &mut header, "header")?;

        let magic: [u8; 8] = header[0..8].try_into().expect("8 bytes");
        if magic != TRACE_MAGIC {
            return Err(PersistError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version == 0 || version > TRACE_FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let chunk_records = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        if chunk_records as usize != CHUNK_RECORDS {
            return Err(PersistError::IncompatibleChunkSize {
                found: chunk_records,
                expected: CHUNK_RECORDS as u32,
            });
        }
        let record_count = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let demand_count = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        if demand_count > record_count {
            return Err(PersistError::Corrupt(format!(
                "demand count {demand_count} exceeds record count {record_count}"
            )));
        }
        let record_count = usize::try_from(record_count)
            .map_err(|_| PersistError::Corrupt("record count exceeds usize".to_owned()))?;
        let context_len = u32::from_le_bytes(header[32..36].try_into().expect("4 bytes"));
        if context_len > MAX_CONTEXT_LEN {
            return Err(PersistError::Corrupt(format!(
                "context block of {context_len} bytes is implausibly large"
            )));
        }
        let codec_field = u32::from_le_bytes(
            header[CODEC_OFFSET..CODEC_OFFSET + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let codec = match version {
            // v1 predates the codec field: the word was reserved-zero, which
            // deliberately coincides with Codec::Raw.
            TRACE_FORMAT_V1 => {
                if codec_field != 0 {
                    return Err(PersistError::Corrupt(format!(
                        "reserved header field is {codec_field}, expected 0"
                    )));
                }
                Codec::Raw
            }
            _ => Codec::from_code(codec_field).ok_or_else(|| {
                PersistError::Corrupt(format!("unknown codec {codec_field} in a v{version} file"))
            })?,
        };
        let stored_checksum = u64::from_le_bytes(
            header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8]
                .try_into()
                .expect("8 bytes"),
        );

        let mut hasher = Fnv64::new();
        header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&[0u8; 8]);
        hasher.update(&header);

        let mut context_bytes = vec![0u8; context_len as usize];
        read_exact(reader, &mut context_bytes, "context block")?;
        hasher.update(&context_bytes);
        let context = decode_context(&context_bytes)?;

        // Rebuild the chunk pages: full chunks become frozen `Arc` pages, a
        // partial tail becomes the in-progress chunk — exactly the layout
        // appending `record_count` events produces. The chunk directory is
        // deliberately *not* pre-sized from the header: `record_count` is
        // attacker/corruption-controlled until the checksum is verified, so
        // every allocation must stay proportional to bytes actually read — a
        // corrupt count then dies as `Truncated` at the first short chunk
        // read instead of aborting in the allocator.
        let full_chunks = record_count / CHUNK_RECORDS;
        let tail = record_count % CHUNK_RECORDS;
        let mut frozen = Vec::new();
        let mut buf = Vec::new();
        let mut read_chunk = |records: usize, buf: &mut Vec<u8>, hasher: &mut Fnv64| match codec {
            Codec::Raw => read_chunk_raw(reader, hasher, records, buf),
            Codec::DeltaVarint => read_chunk_delta_varint(reader, hasher, records, buf),
        };
        for _ in 0..full_chunks {
            frozen.push(Arc::new(read_chunk(CHUNK_RECORDS, &mut buf, &mut hasher)?));
        }
        let current = if tail > 0 {
            read_chunk(tail, &mut buf, &mut hasher)?
        } else {
            TraceChunk::default()
        };

        let computed = hasher.finish();
        if computed != stored_checksum {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_checksum,
                computed,
            });
        }

        let trace = LlcTrace {
            frozen,
            current,
            len: record_count,
            demand_len: demand_count as usize,
            context,
        };
        // The header's demand count is covered by the checksum, but cross-check
        // it against the records so a *writer* bug can never produce a trace
        // whose demand view disagrees with its stream.
        let actual_demands = trace.demand_accesses().count();
        if actual_demands != trace.demand_len {
            return Err(PersistError::Corrupt(format!(
                "header demand count {} disagrees with the {} demand records in the stream",
                trace.demand_len, actual_demands
            )));
        }
        Ok((trace, codec))
    }

    /// Writes the trace to `path` with the default codec — see
    /// [`LlcTrace::save_with`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        self.save_with(path, Codec::default())
    }

    /// Writes the trace to `path` via [`LlcTrace::write_to_with`]
    /// (buffered). Returns the number of bytes written.
    pub fn save_with(&self, path: impl AsRef<Path>, codec: Codec) -> Result<u64, PersistError> {
        let file = std::fs::File::create(path)?;
        let mut writer = std::io::BufWriter::new(file);
        let written = self.write_to_with(&mut writer, codec)?;
        writer.flush()?;
        Ok(written)
    }

    /// Loads a trace from `path` via [`LlcTrace::read_from`] (buffered).
    pub fn load(path: impl AsRef<Path>) -> Result<LlcTrace, PersistError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        LlcTrace::read_from(&mut reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::hint::ReuseHint;
    use crate::policy::lru::Lru;
    use crate::request::AccessInfo;

    /// A mixed stream: hot/cold demand reads and writes with varying hints,
    /// sites and regions, plus periodic writebacks and flush markers.
    fn sample_trace(events: usize) -> LlcTrace {
        let mut trace = LlcTrace::new();
        for i in 0..events {
            let block = if i % 3 == 0 { i % 64 } else { 512 + i } as u64;
            let mut info = AccessInfo::read(block * 64)
                .with_site((i % 11) as u16)
                .with_hint(ReuseHint::decode((i % 4) as u8))
                .with_region(RegionLabel::ALL[i % RegionLabel::ALL.len()]);
            if i % 5 == 0 {
                info.kind = crate::request::AccessKind::Write;
            }
            if i % 7 == 0 {
                trace.push_prefetch(&info);
            } else {
                trace.push(&info);
            }
            if i % 13 == 0 {
                trace.push_writeback(info.addr);
            }
            if i % 97 == 0 {
                trace.push_flush();
            }
        }
        let mut context = RecordContext::default();
        context.l1.record(RegionLabel::Property, false);
        context.l1.record(RegionLabel::EdgeArray, true);
        context.l2.record(RegionLabel::Property, false);
        context.abr_bounds = vec![(64, 1 << 20), (1 << 21, 1 << 22)];
        trace.set_context(context);
        trace
    }

    fn write_to_vec_with(trace: &LlcTrace, codec: Codec) -> Vec<u8> {
        let mut bytes = Vec::new();
        let written = trace
            .write_to_with(&mut bytes, codec)
            .expect("write succeeds");
        assert_eq!(written as usize, bytes.len());
        bytes
    }

    fn write_to_vec(trace: &LlcTrace) -> Vec<u8> {
        write_to_vec_with(trace, Codec::default())
    }

    #[test]
    fn roundtrip_preserves_everything_including_chunk_layout() {
        for codec in Codec::ALL {
            for events in [0, 1, 5, CHUNK_RECORDS - 1, CHUNK_RECORDS, CHUNK_RECORDS + 3] {
                let trace = sample_trace(events);
                let bytes = write_to_vec_with(&trace, codec);
                let (loaded, read_codec) =
                    LlcTrace::read_from_with_codec(&mut bytes.as_slice()).expect("roundtrip");
                assert_eq!(read_codec, codec, "{events} events");
                assert_eq!(loaded, trace, "{codec}: {events} events");
                assert_eq!(loaded.len(), trace.len());
                assert_eq!(loaded.demand_len(), trace.demand_len());
                assert_eq!(loaded.context(), trace.context());
                assert_eq!(
                    loaded.chunks().count(),
                    trace.chunks().count(),
                    "chunk layout must be reproduced"
                );
            }
        }
    }

    #[test]
    fn delta_varint_compresses_the_sample_stream() {
        let trace = sample_trace(50_000);
        let raw = write_to_vec_with(&trace, Codec::Raw);
        let compressed = write_to_vec_with(&trace, Codec::DeltaVarint);
        assert!(
            compressed.len() * 2 < raw.len(),
            "delta+varint must at least halve the raw size: {} vs {}",
            compressed.len(),
            raw.len()
        );
    }

    #[test]
    fn loaded_trace_replays_bit_identically() {
        let trace = sample_trace(4000);
        for codec in Codec::ALL {
            let bytes = write_to_vec_with(&trace, codec);
            let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
            let config = CacheConfig::new(64 * 128, 8, 64);
            let original = trace.replay(config, Lru::new(config.sets(), config.ways));
            let reloaded = loaded.replay(config, Lru::new(config.sets(), config.ways));
            assert_eq!(original, reloaded, "{codec}");
        }
    }

    #[test]
    fn save_and_load_via_files() {
        let trace = sample_trace(300);
        for codec in Codec::ALL {
            let path = std::env::temp_dir().join(format!(
                "grasp-persist-test-{}-{:?}-{}.trace",
                std::process::id(),
                std::thread::current().id(),
                codec
            ));
            let written = trace.save_with(&path, codec).expect("save");
            assert_eq!(written, std::fs::metadata(&path).expect("metadata").len());
            let loaded = LlcTrace::load(&path).expect("load");
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded, trace, "{codec}");
        }
    }

    #[test]
    fn raw_codec_still_writes_the_v1_format() {
        // Compatibility promise: Codec::Raw emits the PR 4 byte layout —
        // version 1, reserved/codec word 0, 12 B/record pages — so pre-codec
        // stores and caches keep loading (and old builds can read new raw
        // files).
        let trace = sample_trace(200);
        let bytes = write_to_vec_with(&trace, Codec::Raw);
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            TRACE_FORMAT_V1
        );
        assert_eq!(u32::from_le_bytes(bytes[36..40].try_into().unwrap()), 0);
        let context_len = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        assert_eq!(
            bytes.len(),
            HEADER_LEN + context_len + trace.len() * 12,
            "raw bodies are exactly 12 B/record"
        );
        let (loaded, codec) =
            LlcTrace::read_from_with_codec(&mut bytes.as_slice()).expect("v1 loads");
        assert_eq!(codec, Codec::Raw);
        assert_eq!(loaded, trace);
    }

    #[test]
    fn codec_labels_round_trip() {
        for codec in Codec::ALL {
            assert_eq!(Codec::from_label(codec.label()), Some(codec));
            assert_eq!(Codec::from_code(codec.code()), Some(codec));
        }
        assert_eq!(Codec::from_label("DV"), Some(Codec::DeltaVarint));
        assert_eq!(Codec::from_label(" raw "), Some(Codec::Raw));
        assert_eq!(Codec::from_label("zstd"), None);
        assert_eq!(Codec::from_code(7), None);
        assert_eq!(Codec::Raw.format_version(), 1);
        assert_eq!(Codec::DeltaVarint.format_version(), 2);
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        let mut buf = Vec::new();
        for value in [0u64, 1, 63, 64, 127, 128, 300, 1 << 20, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos, "test").expect("decodes"), value);
            assert_eq!(pos, buf.len());
            assert_eq!(unzigzag(zigzag(value)), value);
        }
        // Small deltas in either direction stay small after zigzag.
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(1u64.wrapping_neg()), 1);
        assert!(zigzag(64) < 256, "a one-block stride fits two bytes");
    }

    #[test]
    fn malformed_varints_are_typed_errors() {
        // Unterminated (all-continuation) stream.
        let mut pos = 0;
        assert!(matches!(
            get_varint(&[0x80, 0x80], &mut pos, "test"),
            Err(PersistError::Corrupt(_))
        ));
        // 11-byte varint: more than 64 bits of payload.
        let mut pos = 0;
        let overlong = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            get_varint(&overlong, &mut pos, "test"),
            Err(PersistError::Corrupt(_))
        ));
        // u64::MAX itself must decode (10 bytes, final byte 0x01).
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos, "test").unwrap(), u64::MAX);
    }

    #[test]
    fn index_width_matches_dictionary_sizes() {
        assert_eq!(index_width(1), 0);
        assert_eq!(index_width(2), 1);
        assert_eq!(index_width(3), 2);
        assert_eq!(index_width(4), 2);
        assert_eq!(index_width(5), 3);
        assert_eq!(index_width(16), 4);
        assert_eq!(index_width(17), 5);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[0] ^= 0xFF;
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[8..12].copy_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::UnsupportedVersion(v)) => {
                assert_eq!(v, TRACE_FORMAT_VERSION + 1);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Version 0 is equally foreign.
        bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            LlcTrace::read_from(&mut bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn unknown_codec_in_a_v2_file_is_rejected() {
        let mut bytes = write_to_vec_with(&sample_trace(10), Codec::DeltaVarint);
        bytes[CODEC_OFFSET..CODEC_OFFSET + 4].copy_from_slice(&99u32.to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("codec"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn foreign_chunk_geometry_is_rejected() {
        let mut bytes = write_to_vec(&sample_trace(10));
        bytes[12..16].copy_from_slice(&((CHUNK_RECORDS as u32) / 2).to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::IncompatibleChunkSize { found, expected }) => {
                assert_eq!(found as usize, CHUNK_RECORDS / 2);
                assert_eq!(expected as usize, CHUNK_RECORDS);
            }
            other => panic!("expected IncompatibleChunkSize, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_boundary() {
        for codec in Codec::ALL {
            let bytes = write_to_vec_with(&sample_trace(200), codec);
            // Header, context and payload truncations all surface as Truncated.
            for cut in [0, 10, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
                match LlcTrace::read_from(&mut &bytes[..cut]) {
                    Err(PersistError::Truncated { .. }) => {}
                    other => {
                        panic!("{codec}: cut at {cut}: expected Truncated, got {other:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn payload_bit_flip_is_a_typed_error() {
        for codec in Codec::ALL {
            let trace = sample_trace(500);
            let bytes = write_to_vec_with(&trace, codec);
            let mut flipped = bytes.clone();
            let last = flipped.len() - 1;
            flipped[last] ^= 0x01;
            assert!(
                LlcTrace::read_from(&mut flipped.as_slice()).is_err(),
                "{codec}: a flipped payload byte must never load"
            );
        }
    }

    #[test]
    fn header_count_tampering_cannot_pass_the_checksum() {
        // Shrinking the record count re-frames the payload; the checksum
        // (which covers the header) must catch it even though the framing
        // itself stays structurally valid.
        for codec in Codec::ALL {
            let bytes = write_to_vec_with(&sample_trace(CHUNK_RECORDS + 100), codec);
            let mut tampered = bytes.clone();
            tampered[16..24].copy_from_slice(&(100u64).to_le_bytes());
            tampered[24..32].copy_from_slice(&(50u64).to_le_bytes());
            assert!(
                LlcTrace::read_from(&mut tampered.as_slice()).is_err(),
                "{codec}: tampered counts must never load"
            );
        }
    }

    #[test]
    fn absurd_record_count_is_truncation_not_an_allocator_abort() {
        // `record_count` is unvalidated until the checksum passes, so the
        // reader must never size an allocation from it: a corrupted count in
        // the exabyte range has to surface as a typed error.
        for codec in Codec::ALL {
            let mut bytes = write_to_vec_with(&sample_trace(100), codec);
            bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
            bytes[24..32].copy_from_slice(&0u64.to_le_bytes());
            match LlcTrace::read_from(&mut bytes.as_slice()) {
                Err(PersistError::Truncated { .. }) | Err(PersistError::Corrupt(_)) => {}
                other => panic!("{codec}: expected a typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_frame_length_is_corrupt_not_an_allocator_abort() {
        // The v2 frame length is also corruption-controlled: a frame
        // claiming more bytes than any valid encoding of its records must
        // die in the plausibility check, before any allocation.
        let trace = sample_trace(50);
        let mut bytes = write_to_vec_with(&trace, Codec::DeltaVarint);
        let context_len = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        let frame_at = HEADER_LEN + context_len;
        bytes[frame_at..frame_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("frame"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reserved_field_must_be_zero_in_v1() {
        let mut bytes = write_to_vec_with(&sample_trace(10), Codec::Raw);
        bytes[36] = 1;
        assert!(matches!(
            LlcTrace::read_from(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn trace_block_is_embeddable_in_a_larger_stream() {
        for codec in Codec::ALL {
            let trace = sample_trace(150);
            let mut bytes = write_to_vec_with(&trace, codec);
            let trailer = b"store metadata lives here";
            bytes.extend_from_slice(trailer);
            let mut reader = bytes.as_slice();
            let loaded = LlcTrace::read_from(&mut reader).expect("embedded read");
            assert_eq!(loaded, trace);
            assert_eq!(
                reader, trailer,
                "{codec}: reader must stop exactly after the trace"
            );
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        for codec in Codec::ALL {
            let trace = LlcTrace::new();
            let bytes = write_to_vec_with(&trace, codec);
            assert_eq!(
                bytes.len(),
                HEADER_LEN + encode_context(trace.context()).len(),
                "{codec}: an empty trace has no chunk frames at all"
            );
            let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
            assert_eq!(loaded, trace);
            assert!(loaded.is_empty());
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = PersistError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(err.to_string().contains("checksum"));
        assert!(PersistError::Truncated {
            while_reading: "header"
        }
        .to_string()
        .contains("header"));
        let io: PersistError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }

    /// Ensures the demand-count cross-check rejects internally inconsistent
    /// files even when the checksum is recomputed to match (a defence against
    /// writer bugs, not just bit rot).
    #[test]
    fn consistent_checksum_with_wrong_demand_count_is_still_rejected() {
        let mut trace = sample_trace(50);
        // Corrupt the in-memory counter, then persist: the file is
        // checksum-consistent but internally wrong.
        trace.demand_len += 1;
        for codec in Codec::ALL {
            let bytes = write_to_vec_with(&trace, codec);
            match LlcTrace::read_from(&mut bytes.as_slice()) {
                Err(PersistError::Corrupt(msg)) => assert!(msg.contains("demand")),
                other => panic!("{codec}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_is_split_independent() {
        let mut one = Fnv64::new();
        one.update(b"hello world");
        let mut two = Fnv64::new();
        two.update(b"hello");
        two.update(b" world");
        assert_eq!(one.finish(), two.finish());
    }

    #[test]
    fn format_constants_are_stable() {
        // These are on-disk compatibility promises; changing them must be a
        // deliberate format bump, not a refactor side-effect.
        assert_eq!(TRACE_MAGIC, *b"GRSPTRC\0");
        assert_eq!(TRACE_FORMAT_VERSION, 2);
        assert_eq!(TRACE_FORMAT_V1, 1);
        assert_eq!(HEADER_LEN, 48);
    }

    #[test]
    fn encode_matches_access_info_roundtrip() {
        // Sanity: persisted payload words are the in-memory encoding.
        let info = AccessInfo::read(0x1240).with_site(3);
        let mut trace = LlcTrace::new();
        trace.push(&info);
        for codec in Codec::ALL {
            let bytes = write_to_vec_with(&trace, codec);
            let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("roundtrip");
            assert_eq!(loaded.get(0), trace.get(0), "{codec}");
        }
    }
}
