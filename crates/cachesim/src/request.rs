//! Memory access requests.

use crate::addr::Address;
use crate::hint::ReuseHint;
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate).
    Write,
}

/// Which logical data structure an access belongs to.
///
/// The labels mirror the data structures of a CSR-based graph framework
/// (Sec. II-B/II-C of the paper) and drive the Fig. 2 access/miss breakdown:
/// accesses to [`RegionLabel::Property`] are "within the Property Array",
/// everything else is "outside".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionLabel {
    /// Per-vertex Property Array elements (ranks, distances, ...).
    Property,
    /// The CSR Vertex Array (offsets).
    VertexArray,
    /// The CSR Edge Array (neighbour IDs / weights).
    EdgeArray,
    /// Frontier bitmaps / worklists.
    Frontier,
    /// Anything else (stack, bookkeeping, non-graph data).
    Other,
}

impl RegionLabel {
    /// All labels, in reporting order.
    pub const ALL: [RegionLabel; 5] = [
        RegionLabel::Property,
        RegionLabel::VertexArray,
        RegionLabel::EdgeArray,
        RegionLabel::Frontier,
        RegionLabel::Other,
    ];

    /// Returns `true` for accesses that fall within a Property Array.
    pub fn is_property(self) -> bool {
        matches!(self, RegionLabel::Property)
    }

    /// Index of this label in [`RegionLabel::ALL`] (declaration order), used
    /// for direct per-region counter indexing on the access hot path.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            RegionLabel::Property => "property",
            RegionLabel::VertexArray => "vertex",
            RegionLabel::EdgeArray => "edge",
            RegionLabel::Frontier => "frontier",
            RegionLabel::Other => "other",
        }
    }
}

impl std::fmt::Display for RegionLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of the code site performing an access.
///
/// This is the reproduction's stand-in for the program counter (PC) signature
/// used by history-based schemes (SHiP, Hawkeye, Leeway). Crucially — and this
/// is the paper's core argument against PC-based correlation — the *same*
/// site accesses both hot and cold vertices of the Property Array, so a
/// site-indexed predictor cannot separate them.
pub type AccessSite = u16;

/// A single memory access presented to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessInfo {
    /// Byte address.
    pub addr: Address,
    /// Read or write.
    pub kind: AccessKind,
    /// Code-site identifier (PC proxy).
    pub site: AccessSite,
    /// GRASP reuse hint (2 bits); [`ReuseHint::Default`] for non-graph data
    /// or when the Address Bound Registers are not programmed.
    pub hint: ReuseHint,
    /// Logical data-structure label used for per-region statistics.
    pub region: RegionLabel,
}

impl AccessInfo {
    /// A plain read with no hint and no region label.
    pub fn read(addr: Address) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
            site: 0,
            hint: ReuseHint::Default,
            region: RegionLabel::Other,
        }
    }

    /// A plain write with no hint and no region label.
    pub fn write(addr: Address) -> Self {
        Self {
            kind: AccessKind::Write,
            ..Self::read(addr)
        }
    }

    /// Sets the code-site identifier.
    #[must_use]
    pub fn with_site(mut self, site: AccessSite) -> Self {
        self.site = site;
        self
    }

    /// Sets the reuse hint.
    #[must_use]
    pub fn with_hint(mut self, hint: ReuseHint) -> Self {
        self.hint = hint;
        self
    }

    /// Sets the region label.
    #[must_use]
    pub fn with_region(mut self, region: RegionLabel) -> Self {
        self.region = region;
        self
    }

    /// Returns `true` for writes.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let a = AccessInfo::write(0x40)
            .with_site(3)
            .with_hint(ReuseHint::High)
            .with_region(RegionLabel::Property);
        assert!(a.is_write());
        assert_eq!(a.site, 3);
        assert_eq!(a.hint, ReuseHint::High);
        assert!(a.region.is_property());
    }

    #[test]
    fn read_defaults() {
        let a = AccessInfo::read(0);
        assert!(!a.is_write());
        assert_eq!(a.hint, ReuseHint::Default);
        assert_eq!(a.region, RegionLabel::Other);
    }

    #[test]
    fn region_labels_are_unique_and_displayable() {
        let labels: std::collections::HashSet<&str> =
            RegionLabel::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), RegionLabel::ALL.len());
        assert_eq!(RegionLabel::Property.to_string(), "property");
    }

    #[test]
    fn region_index_matches_declaration_order() {
        for (position, &label) in RegionLabel::ALL.iter().enumerate() {
            assert_eq!(label.index(), position, "{label}");
        }
    }
}
