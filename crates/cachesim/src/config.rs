//! Cache and hierarchy configuration.

use serde::{Deserialize, Serialize};

/// Geometry of a single set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `block_bytes` is not a power of
    /// two, or if the resulting number of sets is not a power of two.
    pub fn new(size_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        assert!(
            size_bytes > 0 && ways > 0 && block_bytes > 0,
            "parameters must be non-zero"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let config = Self {
            size_bytes,
            ways,
            block_bytes,
        };
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            (sets as u64).is_power_of_two(),
            "number of sets ({sets}) must be a power of two"
        );
        config
    }

    /// Number of cache blocks.
    pub fn blocks(&self) -> usize {
        (self.size_bytes / self.block_bytes) as usize
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.blocks() / self.ways
    }

    /// Set index of a block address.
    #[inline]
    pub fn set_of(&self, block: u64) -> usize {
        (block % self.sets() as u64) as usize
    }
}

/// Latencies (in cycles) used by the analytic timing model. Defaults follow
/// Table VI of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// L1-D hit latency.
    pub l1_cycles: u64,
    /// L2 hit latency.
    pub l2_cycles: u64,
    /// LLC hit latency (bank access + NoC hops).
    pub llc_cycles: u64,
    /// Main-memory access latency.
    pub memory_cycles: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            l1_cycles: 4,
            l2_cycles: 10,
            llc_cycles: 30,
            memory_cycles: 200,
        }
    }
}

/// Configuration of the simulated three-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Access latencies for the timing model.
    pub latency: LatencyConfig,
    /// Enable the L1 stride prefetcher (Table VI: stride prefetchers with 16
    /// streams).
    pub prefetch: bool,
    /// Record the post-L2 LLC access trace (needed for Belady's OPT and for
    /// replaying the same trace through multiple LLC policies).
    pub record_llc_trace: bool,
}

impl HierarchyConfig {
    /// The paper's simulated configuration (Table VI): 32 KiB 8-way L1-D,
    /// 256 KiB 8-way L2, 16 MiB 16-way LLC.
    pub fn paper_scale() -> Self {
        Self {
            l1: CacheConfig::new(32 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            llc: CacheConfig::new(16 * 1024 * 1024, 16, 64),
            latency: LatencyConfig::default(),
            prefetch: true,
            record_llc_trace: false,
        }
    }

    /// The reproduction's default scaled-down configuration, keeping the
    /// LLC : dataset footprint ratio of the paper (the hot-vertex working set
    /// does not fit in the LLC) while letting experiments finish quickly:
    /// 4 KiB L1-D, 16 KiB L2, 64 KiB 16-way LLC.
    pub fn scaled_default() -> Self {
        Self::scaled_with_llc(64 * 1024)
    }

    /// A scaled configuration with an explicit LLC capacity (used by the
    /// LLC-size sensitivity study of Table VII).
    ///
    /// # Panics
    ///
    /// Panics if `llc_bytes` is smaller than 32 KiB.
    pub fn scaled_with_llc(llc_bytes: u64) -> Self {
        assert!(llc_bytes >= 32 * 1024, "LLC must be at least 32 KiB");
        Self {
            l1: CacheConfig::new(4 * 1024, 8, 64),
            l2: CacheConfig::new(16 * 1024, 8, 64),
            llc: CacheConfig::new(llc_bytes, 16, 64),
            latency: LatencyConfig::default(),
            prefetch: true,
            record_llc_trace: false,
        }
    }

    /// Enables LLC trace recording.
    #[must_use]
    pub fn with_llc_trace(mut self) -> Self {
        self.record_llc_trace = true;
        self
    }

    /// Disables the L1 stride prefetcher.
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_calculations() {
        let c = CacheConfig::new(16 * 1024 * 1024, 16, 64);
        assert_eq!(c.blocks(), 262_144);
        assert_eq!(c.sets(), 16_384);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(16_384), 0);
        assert_eq!(c.set_of(16_385), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_panics() {
        let _ = CacheConfig::new(1024, 4, 48);
    }

    #[test]
    #[should_panic(expected = "must be a power of two")]
    fn non_power_of_two_sets_panics() {
        // 3 KiB / 64 B / 4 ways = 12 sets -> not a power of two.
        let _ = CacheConfig::new(3 * 1024, 4, 64);
    }

    #[test]
    fn paper_scale_matches_table_vi() {
        let h = HierarchyConfig::paper_scale();
        assert_eq!(h.l1.size_bytes, 32 * 1024);
        assert_eq!(h.l2.size_bytes, 256 * 1024);
        assert_eq!(h.llc.size_bytes, 16 * 1024 * 1024);
        assert_eq!(h.llc.ways, 16);
        assert_eq!(h.latency.memory_cycles, 200);
    }

    #[test]
    fn scaled_default_keeps_relative_sizes() {
        let h = HierarchyConfig::default();
        assert!(h.l1.size_bytes < h.l2.size_bytes);
        assert!(h.l2.size_bytes < h.llc.size_bytes);
        assert_eq!(h.llc.ways, 16);
        assert!(!h.record_llc_trace);
        assert!(h.with_llc_trace().record_llc_trace);
        assert!(!h.without_prefetch().prefetch);
    }

    #[test]
    #[should_panic(expected = "at least 32 KiB")]
    fn tiny_llc_panics() {
        let _ = HierarchyConfig::scaled_with_llc(1024);
    }
}
