//! A fast, deterministic hasher for the simulator's predictor tables.
//!
//! The history-based policies (SHiP-MEM, Hawkeye, Leeway) index unbounded
//! predictor tables with small integer keys (region ids, code sites, set
//! indices) on every fill — with the standard library's SipHash, hashing
//! shows up prominently in the simulation hot path. [`FxHasher`] is the
//! multiply-rotate hash used by rustc (FxHash): not DoS-resistant, which is
//! irrelevant here, but several times faster on integer keys and fully
//! deterministic across runs and platforms, preserving the simulator's
//! bit-identical reproducibility.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let hash = |value: u64| {
            let mut h = FxHasher::default();
            h.write_u64(value);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn map_behaves_like_a_map() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i, (i * 2) as u32);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&500), Some(&1000));
        assert_eq!(map.get(&1000), None);
    }
}
