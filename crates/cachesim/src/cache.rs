//! A single set-associative cache with a pluggable replacement policy.

use crate::addr::{block_of, BlockAddr};
use crate::config::CacheConfig;
use crate::policy::ReplacementPolicy;
use crate::request::AccessInfo;
use crate::stats::CacheStats;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The block that was evicted to make room, if any.
    pub evicted: Option<BlockAddr>,
    /// Whether the fill was bypassed (miss with no allocation).
    pub bypassed: bool,
}

impl AccessOutcome {
    /// Returns `true` if the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

/// A set-associative cache.
///
/// The cache stores tags, valid/dirty bits and a per-block "saw a hit since
/// fill" bit; all replacement state lives in the policy.
pub struct SetAssocCache {
    name: &'static str,
    config: CacheConfig,
    sets: usize,
    tags: Vec<BlockAddr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    reused: Vec<bool>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SetAssocCache {
    /// Creates a cache with the given geometry and replacement policy.
    pub fn new(name: &'static str, config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        let sets = config.sets();
        let blocks = config.blocks();
        Self {
            name,
            config,
            sets,
            tags: vec![0; blocks],
            valid: vec![false; blocks],
            dirty: vec![false; blocks],
            reused: vec![false; blocks],
            policy,
            stats: CacheStats::new(),
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Name of the replacement policy managing this cache.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.config.ways + way
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Looks up a block without updating any state. Returns the way if present.
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let block = block_of(addr, self.config.block_bytes);
        let set = self.set_of(block);
        (0..self.config.ways)
            .find(|&way| self.valid[self.idx(set, way)] && self.tags[self.idx(set, way)] == block)
    }

    /// Performs a demand access, updating replacement state and statistics.
    pub fn access(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats.record(info.region, outcome.hit);
        outcome
    }

    /// Performs a prefetch access: identical block placement behaviour, but
    /// accounted separately and never bypassed by the policy.
    pub fn prefetch(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats.record_prefetch(!outcome.hit && !outcome.bypassed);
        outcome
    }

    fn access_inner(&mut self, info: &AccessInfo) -> AccessOutcome {
        let block = block_of(info.addr, self.config.block_bytes);
        let set = self.set_of(block);

        // Hit path.
        for way in 0..self.config.ways {
            let idx = self.idx(set, way);
            if self.valid[idx] && self.tags[idx] == block {
                self.reused[idx] = true;
                if info.is_write() {
                    self.dirty[idx] = true;
                }
                self.policy.on_hit(set, way, info);
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                    bypassed: false,
                };
            }
        }

        // Miss path: maybe bypass.
        if self.policy.should_bypass(set, info) {
            self.stats.bypasses += 1;
            return AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: true,
            };
        }

        // Fill an invalid way if one exists, otherwise ask the policy for a
        // victim.
        let way = (0..self.config.ways)
            .find(|&w| !self.valid[self.idx(set, w)])
            .unwrap_or_else(|| self.policy.choose_victim(set, info));

        let idx = self.idx(set, way);
        let mut evicted = None;
        if self.valid[idx] {
            evicted = Some(self.tags[idx]);
            self.stats.evictions += 1;
            self.policy
                .on_evict(set, way, self.tags[idx], self.reused[idx]);
        }
        self.tags[idx] = block;
        self.valid[idx] = true;
        self.dirty[idx] = info.is_write();
        self.reused[idx] = false;
        self.policy.on_fill(set, way, info);

        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Invalidates every block (used between experiment phases).
    pub fn flush(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.reused.iter_mut().for_each(|r| *r = false);
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lru::Lru;
    use crate::policy::rrip::Srrip;
    use crate::request::RegionLabel;

    fn lru_cache(size: u64, ways: usize) -> SetAssocCache {
        let config = CacheConfig::new(size, ways, 64);
        SetAssocCache::new("test", config, Box::new(Lru::new(config.sets(), ways)))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = lru_cache(4096, 4);
        assert!(!c.access(&AccessInfo::read(0x100)).is_hit());
        assert!(c.access(&AccessInfo::read(0x100)).is_hit());
        // Same block, different offset: still a hit.
        assert!(c.access(&AccessInfo::read(0x13F)).is_hit());
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // One set, two ways.
        let mut c = lru_cache(128, 2);
        c.access(&AccessInfo::read(0)); // block A
        c.access(&AccessInfo::read(128)); // block B (same set)
        c.access(&AccessInfo::read(0)); // touch A
        let outcome = c.access(&AccessInfo::read(256)); // block C evicts B
        assert_eq!(outcome.evicted, Some(2));
        assert!(c.access(&AccessInfo::read(0)).is_hit(), "A must survive");
        assert!(!c.access(&AccessInfo::read(128)).is_hit(), "B was evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = lru_cache(64 * 16, 4);
        for i in 0..64u64 {
            c.access(&AccessInfo::read(i * 64));
        }
        assert_eq!(c.resident_blocks(), 16);
        assert_eq!(c.stats().evictions, 48);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        let before = c.stats().clone();
        assert!(c.probe(0x200).is_some());
        assert!(c.probe(0x4000).is_none());
        assert_eq!(c.stats(), &before);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        c.access(&AccessInfo::read(0x400));
        assert_eq!(c.resident_blocks(), 2);
        c.flush();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(&AccessInfo::read(0x200)).is_hit());
    }

    #[test]
    fn per_region_stats_are_recorded() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0x1000).with_region(RegionLabel::EdgeArray));
        assert_eq!(c.stats().region(RegionLabel::Property).accesses, 2);
        assert_eq!(c.stats().region(RegionLabel::Property).misses, 1);
        assert_eq!(c.stats().region(RegionLabel::EdgeArray).misses, 1);
    }

    #[test]
    fn prefetch_is_not_a_demand_access() {
        let mut c = lru_cache(4096, 4);
        c.prefetch(&AccessInfo::read(0x300));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_accesses, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
        // The prefetched block is resident: a demand access hits.
        assert!(c.access(&AccessInfo::read(0x300)).is_hit());
    }

    #[test]
    fn works_with_rrip_policy_too() {
        let config = CacheConfig::new(64 * 8, 4, 64);
        let mut c = SetAssocCache::new(
            "llc",
            config,
            Box::new(Srrip::new(config.sets(), config.ways)),
        );
        // A small working set with reuse should mostly hit.
        for _ in 0..10 {
            for b in 0..4u64 {
                c.access(&AccessInfo::read(b * 64));
            }
        }
        assert!(c.stats().hits > 30);
        assert_eq!(c.policy_name(), "SRRIP");
    }

    #[test]
    fn write_marks_block_dirty_and_hits_later() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::write(0x80));
        assert!(c.access(&AccessInfo::read(0x80)).is_hit());
    }
}
