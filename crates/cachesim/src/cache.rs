//! A single set-associative cache with a pluggable replacement policy.
//!
//! The per-access path is the hottest code in the simulator, so the cache is
//! laid out for it: valid/dirty/"reused since fill" flags live in packed
//! per-set bitmask words (one `u64` per set and flag, bit = way) instead of
//! per-block `Vec<bool>`s, the set index is a power-of-two mask instead of a
//! `%`, and the tag scan is fused over packed 8-bit partial tags — one SWAR
//! word comparison covers eight ways, so a miss usually rejects the whole
//! set without loading a single full tag. The replacement policy is a
//! statically-dispatched [`PolicyDispatch`], so hit and fill notifications
//! inline instead of paying a virtual call.
//!
//! # Batched lookups
//!
//! Trace replay drives the cache with whole **tiles** of requests at once
//! instead of one request at a time. [`SetAssocCache::replay_batch`] takes a
//! flush-free tile of the post-L2 stream — demand, prefetch and writeback
//! records freely interleaved, each tagged with a [`BatchOp`] — plus a
//! reusable [`BatchScratch`], precomputes the lookup columns (block address,
//! set index, broadcast partial-tag pattern) in tight vectorizable loops,
//! hoists the policy dispatch **out of the access loop** (the kernel is
//! monomorphized per policy, so every hook call inlines with no per-access
//! enum match), and defers all statistics to one flush per tile. Work is
//! tiled in fixed-size (`BATCH_TILE`) request groups so the precomputed columns stay
//! cache-resident. [`SetAssocCache::access_batch`] and
//! [`SetAssocCache::prefetch_batch`] are the uniform-kind entry points for
//! demand-only and prefetch-only runs (synthetic-trace replay). The batch
//! paths and the per-access path execute the *same* per-request mutation
//! sequence — all funnel through the private `CacheCore::access_one` — so
//! their decisions and statistics are bit-for-bit identical by construction.

use crate::addr::{block_of, BlockAddr};
use crate::config::CacheConfig;
use crate::policy::{PolicyDispatch, ReplacementPolicy};
use crate::prefetch::StridePrefetcher;
use crate::request::{AccessInfo, AccessKind, RegionLabel};
use crate::stats::CacheStats;
use crate::swar::{broadcast, broadcast_column, eq_byte_lanes, first_lane};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The block that was evicted to make room, if any.
    pub evicted: Option<BlockAddr>,
    /// Whether the evicted block was dirty (its writeback must be sent to the
    /// next level down).
    pub evicted_dirty: bool,
    /// Whether the fill was bypassed (miss with no allocation).
    pub bypassed: bool,
}

impl AccessOutcome {
    /// Returns `true` if the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

/// The geometry, tag storage and packed per-set metadata of a cache, split
/// from the policy and statistics so the batched kernel can borrow the two
/// halves disjointly: `CacheCore` mutates blocks while the (monomorphized)
/// policy receives its notifications through a separate `&mut`.
struct CacheCore {
    ways: usize,
    /// `sets - 1`; sets is asserted to be a power of two by [`CacheConfig`].
    set_mask: u64,
    /// `log2(sets)`, used to derive the 8-bit partial tag.
    set_bits: u32,
    /// `log2(block_bytes)` for the block-address shift.
    block_shift: u32,
    /// All-ways-valid mask: `ways` low bits set.
    full_mask: u64,
    /// `u64` words of packed partial tags per set (`ways.div_ceil(8)`).
    ptag_words: usize,
    tags: Vec<BlockAddr>,
    /// Packed 8-bit partial tags, one byte per way, `ptag_words` words per
    /// set. The low byte of the full tag: a SWAR equality scan over these
    /// words prunes the full-tag comparisons to (almost always) at most one.
    ptags: Vec<u64>,
    /// Per-set valid bits (bit `w` = way `w`).
    valid: Vec<u64>,
    /// Per-set dirty bits.
    dirty: Vec<u64>,
    /// Per-set "hit since fill" bits.
    reused: Vec<u64>,
}

/// What one access did to the core. The caller (scalar or batched) turns
/// this into statistics, so both paths account identically by construction.
enum OneOutcome {
    Hit,
    Bypassed,
    Filled {
        /// The evicted block and whether it was dirty, if a victim was
        /// displaced.
        evicted: Option<(BlockAddr, bool)>,
    },
}

impl CacheCore {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let blocks = config.blocks();
        assert!(
            config.ways <= 64,
            "associativity {} exceeds the 64 ways supported by packed metadata",
            config.ways
        );
        let full_mask = if config.ways == 64 {
            u64::MAX
        } else {
            (1u64 << config.ways) - 1
        };
        let ptag_words = config.ways.div_ceil(8);
        Self {
            ways: config.ways,
            set_mask: sets as u64 - 1,
            set_bits: (sets as u64).trailing_zeros(),
            block_shift: config.block_bytes.trailing_zeros(),
            full_mask,
            ptag_words,
            tags: vec![0; blocks],
            ptags: vec![0; sets * ptag_words],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            reused: vec![0; sets],
        }
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block & self.set_mask) as usize
    }

    /// The 8-bit partial tag of a block: the low byte of its full tag.
    #[inline]
    fn partial_of(&self, block: BlockAddr) -> u8 {
        (block >> self.set_bits) as u8
    }

    /// Fused tag scan over `set`: the SWAR pass over the packed partial tags
    /// nominates candidate ways (usually zero on a miss, one on a hit); only
    /// candidates that are valid get their full tag compared. `pattern` is
    /// the broadcast partial tag of `block` — precomputed column-wise by the
    /// batched path, computed inline by the scalar one.
    #[inline]
    fn find_way(&self, set: usize, block: BlockAddr, pattern: u64) -> Option<usize> {
        let valid = self.valid[set];
        let tags = &self.tags[set * self.ways..][..self.ways];
        let words = &self.ptags[set * self.ptag_words..][..self.ptag_words];
        for (word_index, &word) in words.iter().enumerate() {
            let mut lanes = eq_byte_lanes(word, pattern);
            while lanes != 0 {
                let way = word_index * 8 + first_lane(lanes);
                if way < self.ways && valid & (1u64 << way) != 0 && tags[way] == block {
                    return Some(way);
                }
                lanes &= lanes - 1;
            }
        }
        None
    }

    /// Hints the CPU to pull `set`'s metadata (valid mask, partial tags, the
    /// tag row) toward L1 ahead of its lookup. The batched kernels call this
    /// a fixed lookahead ahead of the access cursor: the precomputed set
    /// column tells them *future* lookup targets, which is the one structural
    /// advantage batching has over per-event dispatch — the dependent random
    /// loads of `find_way` can be overlapped instead of serialized.
    #[inline]
    #[allow(unused_variables)]
    fn prefetch_set(&self, set: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SAFETY: prefetch is a pure hint with no program-visible memory
            // access; the offsets are in bounds for any valid set index.
            unsafe {
                _mm_prefetch::<_MM_HINT_T0>(self.valid.as_ptr().add(set).cast());
                _mm_prefetch::<_MM_HINT_T0>(self.ptags.as_ptr().add(set * self.ptag_words).cast());
                _mm_prefetch::<_MM_HINT_T0>(self.tags.as_ptr().add(set * self.ways).cast());
            }
        }
    }

    /// Writes the partial tag of `block` into `way`'s byte lane.
    #[inline]
    fn store_partial(&mut self, set: usize, way: usize, block: BlockAddr) {
        let partial = self.partial_of(block);
        let word = &mut self.ptags[set * self.ptag_words + way / 8];
        let shift = (way % 8) * 8;
        *word = (*word & !(0xFFu64 << shift)) | (u64::from(partial) << shift);
    }

    /// The one per-request mutation sequence of the cache, shared verbatim by
    /// the scalar path (`P = PolicyDispatch`) and the batched kernel (`P` =
    /// each concrete policy): lookup, hit bookkeeping, bypass consultation,
    /// invalid-way-first fill, victim eviction with its pre-mutation metadata
    /// snapshot, and the policy notifications in their fixed order
    /// (`should_bypass` only on a miss, `choose_victim` only when the set is
    /// full, `on_evict` before the overwrite, `on_fill` last).
    #[inline]
    fn access_one<P: ReplacementPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        block: BlockAddr,
        set: usize,
        pattern: u64,
        info: &AccessInfo,
    ) -> OneOutcome {
        self.access_one_way(policy, block, set, pattern, info, &mut 0)
    }

    /// [`CacheCore::access_one`] that additionally reports which way served
    /// the request (hit way or fill way) through `way_out`; untouched on a
    /// bypass. Lets the fused record kernel maintain its way memo without
    /// widening [`OneOutcome`] for every other caller.
    #[inline]
    fn access_one_way<P: ReplacementPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        block: BlockAddr,
        set: usize,
        pattern: u64,
        info: &AccessInfo,
        way_out: &mut usize,
    ) -> OneOutcome {
        // Hit path: fused valid-mask + tag scan.
        if let Some(way) = self.find_way(set, block, pattern) {
            *way_out = way;
            let bit = 1u64 << way;
            self.reused[set] |= bit;
            if info.is_write() {
                self.dirty[set] |= bit;
            }
            policy.on_hit(set, way, info);
            return OneOutcome::Hit;
        }

        // Miss path: maybe bypass.
        if policy.should_bypass(set, info) {
            return OneOutcome::Bypassed;
        }

        // Fill the lowest invalid way if one exists, otherwise ask the policy
        // for a victim.
        let valid = self.valid[set];
        let way = if valid != self.full_mask {
            (!valid).trailing_zeros() as usize
        } else {
            policy.choose_victim(set, info)
        };

        *way_out = way;
        let bit = 1u64 << way;
        let idx = set * self.ways + way;
        let mut evicted = None;
        if valid & bit != 0 {
            evicted = Some((self.tags[idx], self.dirty[set] & bit != 0));
            policy.on_evict(set, way, self.tags[idx], self.reused[set] & bit != 0);
        }
        self.tags[idx] = block;
        self.store_partial(set, way, block);
        self.valid[set] |= bit;
        if info.is_write() {
            self.dirty[set] |= bit;
        } else {
            self.dirty[set] &= !bit;
        }
        self.reused[set] &= !bit;
        policy.on_fill(set, way, info);

        OneOutcome::Filled { evicted }
    }

    /// [`CacheCore::access_one`] fronted by the fused record kernel's way
    /// memo. A memo hit is proof of residency (see [`WayMemo`]), so the hit
    /// bookkeeping runs without the partial-tag broadcast or the SWAR tag
    /// scan — the dominant cost of the run-heavy record stream, where the
    /// same 64-byte block is touched word by word. The slow path resolves
    /// through `access_one_way` and teaches the memo the serving way.
    #[inline]
    fn access_one_memo<P: ReplacementPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        block: BlockAddr,
        set: usize,
        info: &AccessInfo,
        memo: &mut WayMemo,
    ) -> OneOutcome {
        if let Some(way) = memo.probe(block) {
            // Mirrors the hit path of `access_one_way` exactly.
            let bit = 1u64 << way;
            self.reused[set] |= bit;
            if info.is_write() {
                self.dirty[set] |= bit;
            }
            policy.on_hit(set, way, info);
            return OneOutcome::Hit;
        }
        let pattern = broadcast(self.partial_of(block));
        let mut way = 0;
        let outcome = self.access_one_way(policy, block, set, pattern, info, &mut way);
        match &outcome {
            OneOutcome::Bypassed => {}
            OneOutcome::Hit => memo.insert(block, way),
            OneOutcome::Filled { evicted } => {
                if let Some((victim, _)) = evicted {
                    memo.forget(*victim);
                }
                memo.insert(block, way);
            }
        }
        outcome
    }
}

/// A two-entry block-to-way memo for the fused record kernel's L1 stage.
///
/// Record streams touch the same 64-byte block for runs of consecutive word
/// accesses, and each demand interleaves at most one prefetch request to a
/// neighbouring block — two entries capture that alternation. The invariant:
/// every live entry names a block the kernel itself just placed or found in
/// the cache, and the only way a block leaves L1 mid-kernel is eviction by a
/// fill, whose victim is immediately forgotten. A probe hit is therefore a
/// *proof* of residency at the recorded way, never a heuristic.
#[derive(Debug, Clone, Copy)]
struct WayMemo {
    blocks: [BlockAddr; 2],
    ways: [usize; 2],
    live: [bool; 2],
    mru: usize,
}

impl WayMemo {
    fn new() -> Self {
        Self {
            blocks: [0; 2],
            ways: [0; 2],
            live: [false; 2],
            mru: 0,
        }
    }

    #[inline]
    fn probe(&mut self, block: BlockAddr) -> Option<usize> {
        if self.live[0] && self.blocks[0] == block {
            self.mru = 0;
            return Some(self.ways[0]);
        }
        if self.live[1] && self.blocks[1] == block {
            self.mru = 1;
            return Some(self.ways[1]);
        }
        None
    }

    /// Records `block` at `way`, displacing the least-recently-probed entry.
    /// Only called on a probe miss, so `block` is never already present.
    #[inline]
    fn insert(&mut self, block: BlockAddr, way: usize) {
        let slot = 1 - self.mru;
        self.blocks[slot] = block;
        self.ways[slot] = way;
        self.live[slot] = true;
        self.mru = slot;
    }

    #[inline]
    fn forget(&mut self, block: BlockAddr) {
        if self.blocks[0] == block {
            self.live[0] = false;
        }
        if self.blocks[1] == block {
            self.live[1] = false;
        }
    }
}

/// Reusable precomputed lookup columns for one batched run of accesses.
///
/// [`SetAssocCache::access_batch`] and [`SetAssocCache::prefetch_batch`] fill
/// the columns (block address, set index, broadcast partial-tag pattern) in
/// tight loops over the run before touching the cache, so the access kernel
/// itself performs no per-request address arithmetic. Allocate one scratch
/// per replay and reuse it across runs; the columns grow to the largest run
/// fed so far and are never shrunk.
#[derive(Debug, Default)]
pub struct BatchScratch {
    blocks: Vec<BlockAddr>,
    sets: Vec<u32>,
    patterns: Vec<u64>,
}

impl BatchScratch {
    /// Creates an empty scratch (columns allocate on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Precomputes the lookup columns for `infos`: three vectorizable passes
    /// (shift, mask, broadcast-multiply) with no branches.
    fn prepare(&mut self, core: &CacheCore, infos: &[AccessInfo]) {
        self.blocks.clear();
        self.sets.clear();
        self.patterns.clear();
        self.blocks
            .extend(infos.iter().map(|info| info.addr >> core.block_shift));
        self.sets.extend(
            self.blocks
                .iter()
                .map(|&block| (block & core.set_mask) as u32),
        );
        broadcast_column(
            self.blocks.iter().map(|&block| core.partial_of(block)),
            &mut self.patterns,
        );
    }

    /// Like [`BatchScratch::prepare`], but straight off a raw byte-address
    /// column (as stored in a trace chunk) — no decoded requests needed, so
    /// fused replay can columnize before any record is decoded.
    fn prepare_addrs(&mut self, core: &CacheCore, addrs: &[u64]) {
        self.blocks.clear();
        self.sets.clear();
        self.patterns.clear();
        self.blocks
            .extend(addrs.iter().map(|&addr| addr >> core.block_shift));
        self.sets.extend(
            self.blocks
                .iter()
                .map(|&block| (block & core.set_mask) as u32),
        );
        broadcast_column(
            self.blocks.iter().map(|&block| core.partial_of(block)),
            &mut self.patterns,
        );
    }
}

/// The request kind of one record in a mixed replay batch.
///
/// Replay tiles mix the three non-flush record kinds of the post-L2 stream
/// freely — demand and prefetch requests interleave densely in recorded
/// traces (the prefetcher issues into the demand stream), so splitting
/// batches at kind changes would degenerate to per-access dispatch. Only
/// flushes (whole-cache invalidation, policy reset) break a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BatchOp {
    /// A demand request: full demand accounting, misses reach memory.
    Demand = 0,
    /// A prefetch request: same placement, prefetch accounting.
    Prefetch = 1,
    /// A dirty-victim writeback: non-allocating, never consults the policy.
    Writeback = 2,
}

/// Batched work is processed in tiles of at most this many requests so the
/// decoded [`AccessInfo`] buffer and the [`BatchScratch`] columns stay
/// cache-resident (~45 KiB per tile) instead of thrashing the host LLC the
/// simulated accesses are also streaming through.
pub(crate) const BATCH_TILE: usize = 1024;

/// How far ahead of the access cursor the batched kernels issue
/// [`CacheCore::prefetch_set`] hints. Far enough to hide a memory round
/// trip at a few ns per simulated access, near enough that the warmed lines
/// are still resident when the cursor arrives.
const PREFETCH_LOOKAHEAD: usize = 16;

/// Per-tile statistic sums deferred by the batched kernels. All counters are
/// plain sums, so flushing them once per tile produces exactly the totals
/// the per-access `CacheStats::record*` calls would have.
#[derive(Default)]
struct BatchTotals {
    demand_accesses: u64,
    demand_misses: u64,
    prefetch_accesses: u64,
    prefetch_fills: u64,
    writeback_accesses: u64,
    writeback_hits: u64,
    evictions: u64,
    bypasses: u64,
    region_accesses: [u64; RegionLabel::ALL.len()],
    region_misses: [u64; RegionLabel::ALL.len()],
}

impl BatchTotals {
    #[inline]
    fn tally_demand(&mut self, info: &AccessInfo, outcome: &OneOutcome) {
        let idx = info.region.index();
        self.demand_accesses += 1;
        self.region_accesses[idx] += 1;
        match outcome {
            OneOutcome::Hit => {}
            OneOutcome::Bypassed => {
                self.demand_misses += 1;
                self.bypasses += 1;
                self.region_misses[idx] += 1;
            }
            OneOutcome::Filled { evicted } => {
                self.demand_misses += 1;
                if evicted.is_some() {
                    self.evictions += 1;
                }
                self.region_misses[idx] += 1;
            }
        }
    }

    #[inline]
    fn tally_prefetch(&mut self, outcome: &OneOutcome) {
        self.prefetch_accesses += 1;
        match outcome {
            OneOutcome::Hit => {}
            OneOutcome::Bypassed => self.bypasses += 1,
            OneOutcome::Filled { evicted } => {
                self.prefetch_fills += 1;
                if evicted.is_some() {
                    self.evictions += 1;
                }
            }
        }
    }

    fn flush(&self, stats: &mut CacheStats) {
        stats.bypasses += self.bypasses;
        stats.evictions += self.evictions;
        stats.accesses += self.demand_accesses;
        stats.hits += self.demand_accesses - self.demand_misses;
        stats.misses += self.demand_misses;
        for (idx, &region) in RegionLabel::ALL.iter().enumerate() {
            if self.region_accesses[idx] != 0 {
                stats.add_region_counters(
                    region,
                    self.region_accesses[idx],
                    self.region_misses[idx],
                );
            }
        }
        stats.prefetch_accesses += self.prefetch_accesses;
        stats.prefetch_fills += self.prefetch_fills;
        stats.writeback_accesses += self.writeback_accesses;
        stats.writeback_hits += self.writeback_hits;
    }
}

/// The monomorphized uniform-kind batched access kernel: one in-order pass
/// over the run against the precomputed columns. Accesses must stay in
/// order — a fill by request `i` changes what request `i + 1` sees in the
/// same set — so the win comes from the hoisted policy dispatch, the
/// columnized address arithmetic and the deferred statistics, not from
/// reordering lookups.
fn batch_kernel<const DEMAND: bool, P: ReplacementPolicy + ?Sized>(
    core: &mut CacheCore,
    policy: &mut P,
    infos: &[AccessInfo],
    scratch: &BatchScratch,
    totals: &mut BatchTotals,
) {
    let blocks = &scratch.blocks[..infos.len()];
    let sets = &scratch.sets[..infos.len()];
    let patterns = &scratch.patterns[..infos.len()];
    for (i, info) in infos.iter().enumerate() {
        if let Some(&ahead) = sets.get(i + PREFETCH_LOOKAHEAD) {
            core.prefetch_set(ahead as usize);
        }
        let outcome = core.access_one(policy, blocks[i], sets[i] as usize, patterns[i], info);
        if DEMAND {
            totals.tally_demand(info, &outcome);
        } else {
            totals.tally_prefetch(&outcome);
        }
    }
}

/// The monomorphized mixed replay kernel: like [`batch_kernel`], but each
/// request carries its own [`BatchOp`] so demand, prefetch and writeback
/// records replay in one pass without splitting the tile at kind changes.
/// Writebacks are non-allocating probes (hit ⇒ mark dirty) and never touch
/// the policy, exactly like [`SetAssocCache::writeback`].
///
/// Requests are produced on the fly by `decode(i)` and consumed in
/// registers, so a caller that decodes straight off a trace chunk's columns
/// never materializes an intermediate request buffer — the closure is
/// monomorphized into the loop alongside the policy.
fn replay_kernel<P, F>(
    core: &mut CacheCore,
    policy: &mut P,
    decode: &F,
    blocks: &[BlockAddr],
    sets: &[u32],
    patterns: &[u64],
    totals: &mut BatchTotals,
) where
    P: ReplacementPolicy + ?Sized,
    F: Fn(usize) -> (AccessInfo, BatchOp),
{
    let len = blocks.len();
    let sets = &sets[..len];
    let patterns = &patterns[..len];
    for i in 0..len {
        if let Some(&ahead) = sets.get(i + PREFETCH_LOOKAHEAD) {
            core.prefetch_set(ahead as usize);
        }
        let (info, op) = decode(i);
        let (block, set, pattern) = (blocks[i], sets[i] as usize, patterns[i]);
        match op {
            BatchOp::Demand => {
                let outcome = core.access_one(policy, block, set, pattern, &info);
                totals.tally_demand(&info, &outcome);
            }
            BatchOp::Prefetch => {
                let outcome = core.access_one(policy, block, set, pattern, &info);
                totals.tally_prefetch(&outcome);
            }
            BatchOp::Writeback => {
                totals.writeback_accesses += 1;
                if let Some(way) = core.find_way(set, block, pattern) {
                    core.dirty[set] |= 1u64 << way;
                    totals.writeback_hits += 1;
                }
            }
        }
    }
}

/// One record escaping the upper levels toward the LLC, reported by
/// [`record_filter_fused`] in the exact emission order of the scalar
/// record path (request record first, then the L1 victim its fill
/// forwarded, then the L2 victim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordEscape {
    /// A demand or prefetch request that missed (or bypassed) both levels.
    Request {
        /// The request as the upper levels saw it (hint still `Default`;
        /// the caller classifies and encodes).
        info: AccessInfo,
        /// `true` for a prefetcher-issued request.
        prefetch: bool,
    },
    /// A dirty-victim writeback bound for the LLC (byte address).
    Writeback(u64),
}

/// The fused two-level filtering kernel of the batched *record* path: one
/// in-order pass drives each demand of `tile` (and the prefetch it triggers)
/// through L1 and, on a miss, through L2 — block/set/pattern arithmetic in
/// registers, both policy dispatches hoisted out of the loop, statistics
/// deferred to per-tile sums, and every post-L2 record handed to `emit` in
/// scalar order. A staged columnar variant (L1 pass, dense survivor re-pack,
/// L2 pass) measured *slower* than the per-event path on record streams —
/// they are overwhelmingly L1 hits, so materializing request columns costs
/// more than the passes save — which is why this kernel fuses the levels
/// instead and keeps only the batching wins that are free at hit time.
#[allow(clippy::too_many_arguments)]
#[inline]
fn fused_record_kernel<P1, P2, F>(
    l1: &mut CacheCore,
    p1: &mut P1,
    l1_totals: &mut BatchTotals,
    l2: &mut CacheCore,
    p2: &mut P2,
    l2_totals: &mut BatchTotals,
    mut prefetcher: Option<&mut StridePrefetcher>,
    tile: &[AccessInfo],
    emit: &mut F,
) where
    P1: ReplacementPolicy + ?Sized,
    P2: ReplacementPolicy + ?Sized,
    F: FnMut(RecordEscape),
{
    let mut slot_hint = usize::MAX;
    let mut memo = WayMemo::new();
    for info in tile {
        // The incoming hint is ignored exactly as the scalar entry point
        // rebuilds it: requests reach the caches hint-free.
        let demand = AccessInfo {
            hint: crate::hint::ReuseHint::Default,
            ..*info
        };
        request_one::<false, _, _, _>(
            l1, p1, l1_totals, l2, p2, l2_totals, &mut memo, &demand, emit,
        );
        if let Some(p) = prefetcher.as_mut() {
            if let Some(addr) = p.observe_with_hint(info.site, info.addr, &mut slot_hint) {
                let pf = AccessInfo {
                    addr,
                    kind: AccessKind::Read,
                    site: info.site,
                    hint: crate::hint::ReuseHint::Default,
                    region: info.region,
                };
                request_one::<true, _, _, _>(
                    l1, p1, l1_totals, l2, p2, l2_totals, &mut memo, &pf, emit,
                );
            }
        }
    }
}

/// Drives one request (demand, or prefetch when `PREFETCH`) through both
/// levels, mirroring the scalar `UpperLevels::demand`/`prefetch` +
/// `drain_writebacks` sequence exactly: L1 lookup; on a miss the request and
/// then its dirty L1 victim go to L2 (the victim forwarded to the LLC when
/// L2 does not hold it), and the L2 victim trails last.
#[allow(clippy::too_many_arguments)]
#[inline]
fn request_one<const PREFETCH: bool, P1, P2, F>(
    l1: &mut CacheCore,
    p1: &mut P1,
    l1_totals: &mut BatchTotals,
    l2: &mut CacheCore,
    p2: &mut P2,
    l2_totals: &mut BatchTotals,
    memo: &mut WayMemo,
    info: &AccessInfo,
    emit: &mut F,
) where
    P1: ReplacementPolicy + ?Sized,
    P2: ReplacementPolicy + ?Sized,
    F: FnMut(RecordEscape),
{
    let block = info.addr >> l1.block_shift;
    let set = (block & l1.set_mask) as usize;
    let outcome = l1.access_one_memo(p1, block, set, info, memo);
    if PREFETCH {
        l1_totals.tally_prefetch(&outcome);
    } else {
        l1_totals.tally_demand(info, &outcome);
    }
    let l1_victim = match outcome {
        OneOutcome::Hit => return,
        OneOutcome::Bypassed => None,
        OneOutcome::Filled { evicted } => {
            evicted.and_then(|(victim, dirty)| dirty.then_some(victim << l1.block_shift))
        }
    };

    let block = info.addr >> l2.block_shift;
    let set = (block & l2.set_mask) as usize;
    let pattern = broadcast(l2.partial_of(block));
    let outcome = l2.access_one(p2, block, set, pattern, info);
    if PREFETCH {
        l2_totals.tally_prefetch(&outcome);
    } else {
        l2_totals.tally_demand(info, &outcome);
    }
    let l2_victim = match outcome {
        OneOutcome::Hit => None,
        OneOutcome::Bypassed => {
            emit(RecordEscape::Request {
                info: *info,
                prefetch: PREFETCH,
            });
            None
        }
        OneOutcome::Filled { evicted } => {
            emit(RecordEscape::Request {
                info: *info,
                prefetch: PREFETCH,
            });
            evicted.and_then(|(victim, dirty)| dirty.then_some(victim << l2.block_shift))
        }
    };

    if let Some(addr) = l1_victim {
        // The L1 victim is written back into L2 and forwarded to the LLC
        // only when L2 does not hold the block (scalar `drain_writebacks`).
        let block = addr >> l2.block_shift;
        let set = (block & l2.set_mask) as usize;
        let pattern = broadcast(l2.partial_of(block));
        l2_totals.writeback_accesses += 1;
        if let Some(way) = l2.find_way(set, block, pattern) {
            l2.dirty[set] |= 1u64 << way;
            l2_totals.writeback_hits += 1;
        } else {
            emit(RecordEscape::Writeback(addr));
        }
    }
    if let Some(addr) = l2_victim {
        emit(RecordEscape::Writeback(addr));
    }
}

/// Filters one tile of demand accesses through an L1/L2 pair with the fused
/// record kernel, hoisting both policy dispatches for the pair the upper
/// levels actually run (LRU at both levels); any other pairing falls back to
/// the same kernel with the per-call dispatch the scalar path uses.
/// Statistics are flushed once per call, bit-identical to the scalar
/// sequence by construction.
pub(crate) fn record_filter_fused(
    l1: &mut SetAssocCache,
    l2: &mut SetAssocCache,
    prefetcher: Option<&mut StridePrefetcher>,
    tile: &[AccessInfo],
    emit: &mut impl FnMut(RecordEscape),
) {
    let mut l1_totals = BatchTotals::default();
    let mut l2_totals = BatchTotals::default();
    match (&mut l1.policy, &mut l2.policy) {
        (PolicyDispatch::Lru(p1), PolicyDispatch::Lru(p2)) => fused_record_kernel(
            &mut l1.core,
            p1,
            &mut l1_totals,
            &mut l2.core,
            p2,
            &mut l2_totals,
            prefetcher,
            tile,
            emit,
        ),
        (p1, p2) => fused_record_kernel(
            &mut l1.core,
            p1,
            &mut l1_totals,
            &mut l2.core,
            p2,
            &mut l2_totals,
            prefetcher,
            tile,
            emit,
        ),
    }
    l1_totals.flush(&mut l1.stats);
    l2_totals.flush(&mut l2.stats);
}

/// Expands `$body` once per [`PolicyDispatch`] variant with `$p` bound to the
/// concrete policy, hoisting the dispatch match out of whatever loop `$body`
/// contains. Unlike the forwarding methods on `PolicyDispatch` (which match
/// per call), one expansion of this macro matches once per *run*; the `Dyn`
/// escape hatch re-borrows the trait object so the same generic body serves
/// it through virtual calls.
macro_rules! for_each_policy {
    ($dispatch:expr, $p:ident => $body:expr) => {
        match $dispatch {
            PolicyDispatch::Lru($p) => $body,
            PolicyDispatch::Random($p) => $body,
            PolicyDispatch::Srrip($p) => $body,
            PolicyDispatch::Brrip($p) => $body,
            PolicyDispatch::Drrip($p) => $body,
            PolicyDispatch::ShipMem($p) => $body,
            PolicyDispatch::Hawkeye($p) => $body,
            PolicyDispatch::Leeway($p) => $body,
            PolicyDispatch::Pin($p) => $body,
            PolicyDispatch::Grasp($p) => $body,
            PolicyDispatch::Dyn(boxed) => {
                let $p = boxed.as_mut();
                $body
            }
        }
    };
}

/// A set-associative cache.
///
/// The cache stores tags plus packed valid/dirty/"saw a hit since fill"
/// bitmasks; all replacement state lives in the policy.
pub struct SetAssocCache {
    name: &'static str,
    config: CacheConfig,
    core: CacheCore,
    policy: PolicyDispatch,
    stats: CacheStats,
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SetAssocCache {
    /// Creates a cache with the given geometry and replacement policy.
    ///
    /// Accepts anything convertible into a [`PolicyDispatch`]: a concrete
    /// policy value, a `Box` of one (statically dispatched either way), or a
    /// `Box<dyn ReplacementPolicy>` for policies outside the built-in roster.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (the packed per-set metadata
    /// uses one `u64` word per flag).
    pub fn new(name: &'static str, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        Self {
            name,
            config,
            core: CacheCore::new(config),
            policy: policy.into(),
            stats: CacheStats::new(),
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Name of the replacement policy managing this cache.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up a block without updating any state. Returns the way if present.
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let block = block_of(addr, self.config.block_bytes);
        let pattern = broadcast(self.core.partial_of(block));
        self.core.find_way(self.core.set_of(block), block, pattern)
    }

    /// Performs a demand access, updating replacement state and statistics.
    #[inline]
    pub fn access(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats.record(info.region, outcome.hit);
        outcome
    }

    /// Performs a prefetch access: identical block placement behaviour, but
    /// accounted separately and never bypassed by the policy.
    pub fn prefetch(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats
            .record_prefetch(!outcome.hit && !outcome.bypassed);
        outcome
    }

    fn access_inner(&mut self, info: &AccessInfo) -> AccessOutcome {
        let block = info.addr >> self.core.block_shift;
        let set = self.core.set_of(block);
        let pattern = broadcast(self.core.partial_of(block));
        match self
            .core
            .access_one(&mut self.policy, block, set, pattern, info)
        {
            OneOutcome::Hit => AccessOutcome {
                hit: true,
                evicted: None,
                evicted_dirty: false,
                bypassed: false,
            },
            OneOutcome::Bypassed => {
                self.stats.bypasses += 1;
                AccessOutcome {
                    hit: false,
                    evicted: None,
                    evicted_dirty: false,
                    bypassed: true,
                }
            }
            OneOutcome::Filled { evicted } => {
                if evicted.is_some() {
                    self.stats.evictions += 1;
                }
                let (evicted, evicted_dirty) = match evicted {
                    Some((block, dirty)) => (Some(block), dirty),
                    None => (None, false),
                };
                AccessOutcome {
                    hit: false,
                    evicted,
                    evicted_dirty,
                    bypassed: false,
                }
            }
        }
    }

    /// Performs a whole run of demand accesses in one batched pass (see the
    /// module docs): the lookup columns are precomputed into `scratch`, the
    /// policy dispatch is hoisted out of the access loop, and statistics are
    /// flushed once for the run. Bit-identical to calling
    /// [`SetAssocCache::access`] per element, in order. Returns the number
    /// of demand misses in the run.
    pub fn access_batch(&mut self, infos: &[AccessInfo], scratch: &mut BatchScratch) -> u64 {
        self.batch_inner::<true>(infos, scratch)
    }

    /// Batched counterpart of [`SetAssocCache::prefetch`]: identical block
    /// placement to [`SetAssocCache::access_batch`], accounted as prefetch
    /// traffic.
    pub fn prefetch_batch(&mut self, infos: &[AccessInfo], scratch: &mut BatchScratch) {
        self.batch_inner::<false>(infos, scratch);
    }

    fn batch_inner<const DEMAND: bool>(
        &mut self,
        infos: &[AccessInfo],
        scratch: &mut BatchScratch,
    ) -> u64 {
        let mut misses = 0;
        for start in (0..infos.len()).step_by(BATCH_TILE) {
            let tile = &infos[start..infos.len().min(start + BATCH_TILE)];
            scratch.prepare(&self.core, tile);
            let mut totals = BatchTotals::default();
            let core = &mut self.core;
            for_each_policy!(
                &mut self.policy,
                p => batch_kernel::<DEMAND, _>(core, p, tile, scratch, &mut totals)
            );
            totals.flush(&mut self.stats);
            misses += if DEMAND {
                totals.demand_misses
            } else {
                totals.prefetch_fills
            };
        }
        misses
    }

    /// Replays one flush-free tile of a recorded post-L2 stream — demand,
    /// prefetch and writeback records freely interleaved, each tagged with
    /// its [`BatchOp`] — through the mixed batched kernel. Bit-identical to
    /// dispatching each record through [`SetAssocCache::access`] /
    /// [`SetAssocCache::prefetch`] / [`SetAssocCache::writeback`] in order.
    /// Returns the number of demand misses (the requests that reach memory).
    ///
    /// # Panics
    ///
    /// Panics when `infos` and `ops` have different lengths.
    pub fn replay_batch(
        &mut self,
        infos: &[AccessInfo],
        ops: &[BatchOp],
        scratch: &mut BatchScratch,
    ) -> u64 {
        assert_eq!(infos.len(), ops.len(), "one BatchOp per request");
        let mut misses = 0;
        for start in (0..infos.len()).step_by(BATCH_TILE) {
            let end = infos.len().min(start + BATCH_TILE);
            let tile = &infos[start..end];
            let tile_ops = &ops[start..end];
            scratch.prepare(&self.core, tile);
            let mut totals = BatchTotals::default();
            let core = &mut self.core;
            let decode = |i: usize| (tile[i], tile_ops[i]);
            for_each_policy!(
                &mut self.policy,
                p => replay_kernel(
                    core,
                    p,
                    &decode,
                    &scratch.blocks,
                    &scratch.sets,
                    &scratch.patterns,
                    &mut totals
                )
            );
            totals.flush(&mut self.stats);
            misses += totals.demand_misses;
        }
        misses
    }

    /// Precomputes the lookup columns (block, set index, SWAR partial-tag
    /// pattern) for a whole run into `scratch` without replaying anything.
    /// The columns depend only on the cache *geometry*, so a policy fan-out
    /// can prepare them once on any same-geometry cache and replay them
    /// through every stage via [`SetAssocCache::replay_batch_prepared`].
    pub fn prepare_batch(&self, infos: &[AccessInfo], scratch: &mut BatchScratch) {
        scratch.prepare(&self.core, infos);
    }

    /// Like [`SetAssocCache::replay_batch`], but consumes lookup columns
    /// already prepared by [`SetAssocCache::prepare_batch`] — the column
    /// computation is paid once for a whole fan-out instead of once per
    /// policy stage.
    ///
    /// Only share scratches between same-geometry caches: the columns bake
    /// in the preparing cache's block size and set count, and a mismatch is
    /// not detectable here.
    ///
    /// # Panics
    ///
    /// Panics when `infos`, `ops` and the prepared columns disagree in
    /// length.
    pub fn replay_batch_prepared(
        &mut self,
        infos: &[AccessInfo],
        ops: &[BatchOp],
        scratch: &BatchScratch,
    ) -> u64 {
        assert_eq!(infos.len(), ops.len(), "one BatchOp per request");
        assert_eq!(
            infos.len(),
            scratch.blocks.len(),
            "scratch prepared for this run"
        );
        let mut misses = 0;
        for start in (0..infos.len()).step_by(BATCH_TILE) {
            let end = infos.len().min(start + BATCH_TILE);
            let tile = &infos[start..end];
            let tile_ops = &ops[start..end];
            let mut totals = BatchTotals::default();
            let core = &mut self.core;
            let decode = |i: usize| (tile[i], tile_ops[i]);
            for_each_policy!(
                &mut self.policy,
                p => replay_kernel(
                    core,
                    p,
                    &decode,
                    &scratch.blocks[start..end],
                    &scratch.sets[start..end],
                    &scratch.patterns[start..end],
                    &mut totals
                )
            );
            totals.flush(&mut self.stats);
            misses += totals.demand_misses;
        }
        misses
    }

    /// The fused variant of [`SetAssocCache::replay_batch`]: the lookup
    /// columns are precomputed straight off the raw byte-address column of a
    /// trace tile and each record is decoded **in registers** by `decode(i)`
    /// the moment the kernel consumes it — no intermediate request or op
    /// buffer is ever materialized. This is the primary replay entry point;
    /// the slice-based [`SetAssocCache::replay_batch`] is the same kernel
    /// fed from already-decoded buffers. Returns the number of demand
    /// misses.
    pub fn replay_batch_fused<F>(
        &mut self,
        addrs: &[u64],
        scratch: &mut BatchScratch,
        decode: F,
    ) -> u64
    where
        F: Fn(usize) -> (AccessInfo, BatchOp),
    {
        let mut misses = 0;
        for start in (0..addrs.len()).step_by(BATCH_TILE) {
            let end = addrs.len().min(start + BATCH_TILE);
            scratch.prepare_addrs(&self.core, &addrs[start..end]);
            let mut totals = BatchTotals::default();
            let core = &mut self.core;
            let tile_decode = |i: usize| decode(start + i);
            for_each_policy!(
                &mut self.policy,
                p => replay_kernel(
                    core,
                    p,
                    &tile_decode,
                    &scratch.blocks,
                    &scratch.sets,
                    &scratch.patterns,
                    &mut totals
                )
            );
            totals.flush(&mut self.stats);
            misses += totals.demand_misses;
        }
        misses
    }

    /// Receives the writeback of a dirty victim evicted by the level above.
    ///
    /// Writebacks are non-allocating: a hit refreshes the resident copy (the
    /// block becomes dirty here), a miss is forwarded towards memory without
    /// disturbing the replacement policy. Returns `true` on a hit.
    pub fn writeback(&mut self, addr: u64) -> bool {
        let block = addr >> self.core.block_shift;
        let set = self.core.set_of(block);
        let pattern = broadcast(self.core.partial_of(block));
        let hit = match self.core.find_way(set, block, pattern) {
            Some(way) => {
                self.core.dirty[set] |= 1u64 << way;
                true
            }
            None => false,
        };
        self.stats.record_writeback(hit);
        hit
    }

    /// Invalidates every block and resets the replacement policy to its
    /// just-constructed state (used between experiment phases). Statistics
    /// keep accumulating across flushes.
    pub fn flush(&mut self) {
        self.core.valid.fill(0);
        self.core.dirty.fill(0);
        self.core.reused.fill(0);
        self.policy.reset();
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.core
            .valid
            .iter()
            .map(|v| v.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lru::Lru;
    use crate::policy::rrip::Srrip;
    use crate::policy::ReplacementPolicy;
    use crate::request::RegionLabel;

    fn lru_cache(size: u64, ways: usize) -> SetAssocCache {
        let config = CacheConfig::new(size, ways, 64);
        SetAssocCache::new("test", config, Box::new(Lru::new(config.sets(), ways)))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = lru_cache(4096, 4);
        assert!(!c.access(&AccessInfo::read(0x100)).is_hit());
        assert!(c.access(&AccessInfo::read(0x100)).is_hit());
        // Same block, different offset: still a hit.
        assert!(c.access(&AccessInfo::read(0x13F)).is_hit());
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // One set, two ways.
        let mut c = lru_cache(128, 2);
        c.access(&AccessInfo::read(0)); // block A
        c.access(&AccessInfo::read(128)); // block B (same set)
        c.access(&AccessInfo::read(0)); // touch A
        let outcome = c.access(&AccessInfo::read(256)); // block C evicts B
        assert_eq!(outcome.evicted, Some(2));
        assert!(c.access(&AccessInfo::read(0)).is_hit(), "A must survive");
        assert!(!c.access(&AccessInfo::read(128)).is_hit(), "B was evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = lru_cache(64 * 16, 4);
        for i in 0..64u64 {
            c.access(&AccessInfo::read(i * 64));
        }
        assert_eq!(c.resident_blocks(), 16);
        assert_eq!(c.stats().evictions, 48);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        let before = c.stats().clone();
        assert!(c.probe(0x200).is_some());
        assert!(c.probe(0x4000).is_none());
        assert_eq!(c.stats(), &before);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        c.access(&AccessInfo::read(0x400));
        assert_eq!(c.resident_blocks(), 2);
        c.flush();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(&AccessInfo::read(0x200)).is_hit());
    }

    #[test]
    fn flush_resets_replacement_state() {
        // After a flush the policy must not remember pre-flush recency: the
        // fill order alone decides the next victim.
        let mut c = lru_cache(128, 2);
        c.access(&AccessInfo::read(0)); // A
        c.access(&AccessInfo::read(128)); // B
        c.access(&AccessInfo::read(0)); // touch A
        c.flush();
        c.access(&AccessInfo::read(0)); // A again (fills way 0)
        c.access(&AccessInfo::read(128)); // B again (fills way 1)
                                          // With a stale LRU clock, way 1 (B) would be older than pre-flush A
                                          // stamps; with a proper reset, A is the LRU block now.
        let outcome = c.access(&AccessInfo::read(256));
        assert_eq!(outcome.evicted, Some(0), "A must be the victim after reset");
    }

    #[test]
    fn per_region_stats_are_recorded() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0x1000).with_region(RegionLabel::EdgeArray));
        assert_eq!(c.stats().region(RegionLabel::Property).accesses, 2);
        assert_eq!(c.stats().region(RegionLabel::Property).misses, 1);
        assert_eq!(c.stats().region(RegionLabel::EdgeArray).misses, 1);
    }

    #[test]
    fn prefetch_is_not_a_demand_access() {
        let mut c = lru_cache(4096, 4);
        c.prefetch(&AccessInfo::read(0x300));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_accesses, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
        // The prefetched block is resident: a demand access hits.
        assert!(c.access(&AccessInfo::read(0x300)).is_hit());
    }

    #[test]
    fn works_with_rrip_policy_too() {
        let config = CacheConfig::new(64 * 8, 4, 64);
        let mut c = SetAssocCache::new(
            "llc",
            config,
            Box::new(Srrip::new(config.sets(), config.ways)),
        );
        // A small working set with reuse should mostly hit.
        for _ in 0..10 {
            for b in 0..4u64 {
                c.access(&AccessInfo::read(b * 64));
            }
        }
        assert!(c.stats().hits > 30);
        assert_eq!(c.policy_name(), "SRRIP");
    }

    #[test]
    fn works_with_dyn_policies() {
        // The trait object stays the extension point for external policies.
        #[derive(Debug)]
        struct EvictWayZero;

        impl ReplacementPolicy for EvictWayZero {
            fn name(&self) -> &'static str {
                "EvictWayZero"
            }

            fn choose_victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
                0
            }

            fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

            fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}
        }

        let config = CacheConfig::new(128, 2, 64);
        let boxed: Box<dyn ReplacementPolicy> = Box::new(EvictWayZero);
        let mut c = SetAssocCache::new("llc", config, boxed);
        c.access(&AccessInfo::read(0)); // way 0
        c.access(&AccessInfo::read(128)); // way 1
        let outcome = c.access(&AccessInfo::read(256));
        assert_eq!(outcome.evicted, Some(0), "custom policy evicts way 0");
        assert_eq!(c.policy_name(), "EvictWayZero");
    }

    #[test]
    fn write_marks_block_dirty_and_hits_later() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::write(0x80));
        assert!(c.access(&AccessInfo::read(0x80)).is_hit());
    }

    /// A mixed run: reads and writes, conflicting sets, several regions.
    fn mixed_run(len: usize) -> Vec<AccessInfo> {
        (0..len as u64)
            .map(|i| {
                let addr = (i * 64 * 7) % 8192 + (i % 3) * 64;
                let info = if i % 5 == 0 {
                    AccessInfo::write(addr)
                } else {
                    AccessInfo::read(addr)
                };
                info.with_region(RegionLabel::ALL[(i % 5) as usize])
                    .with_site((i % 11) as u16)
            })
            .collect()
    }

    #[test]
    fn batched_demand_accesses_match_the_scalar_path_exactly() {
        let run = mixed_run(500);
        for make in [
            || -> SetAssocCache { lru_cache(2048, 4) },
            || -> SetAssocCache {
                let config = CacheConfig::new(2048, 8, 64);
                SetAssocCache::new("test", config, Srrip::new(config.sets(), config.ways))
            },
        ] {
            let mut scalar = make();
            for info in &run {
                scalar.access(info);
            }
            let mut batched = make();
            let mut scratch = BatchScratch::new();
            // Uneven run boundaries exercise scratch reuse across runs.
            let mut misses = 0;
            for window in run.chunks(77) {
                misses += batched.access_batch(window, &mut scratch);
            }
            assert_eq!(scalar.stats(), batched.stats());
            assert_eq!(misses, scalar.stats().misses);
            assert_eq!(scalar.resident_blocks(), batched.resident_blocks());
        }
    }

    #[test]
    fn batched_prefetches_match_the_scalar_path_exactly() {
        let run = mixed_run(300);
        let mut scalar = lru_cache(2048, 4);
        for info in &run {
            scalar.prefetch(info);
        }
        let mut batched = lru_cache(2048, 4);
        let mut scratch = BatchScratch::new();
        for window in run.chunks(64) {
            batched.prefetch_batch(window, &mut scratch);
        }
        assert_eq!(scalar.stats(), batched.stats());
        assert_eq!(scalar.resident_blocks(), batched.resident_blocks());
    }

    #[test]
    fn batched_accesses_drive_dyn_policies_through_the_escape_hatch() {
        #[derive(Debug)]
        struct EvictHighestWay(usize);

        impl ReplacementPolicy for EvictHighestWay {
            fn name(&self) -> &'static str {
                "EvictHighestWay"
            }

            fn choose_victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
                self.0 - 1
            }

            fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

            fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}
        }

        let run = mixed_run(200);
        let config = CacheConfig::new(1024, 4, 64);
        let make = || {
            let boxed: Box<dyn ReplacementPolicy> = Box::new(EvictHighestWay(config.ways));
            SetAssocCache::new("test", config, boxed)
        };
        let mut scalar = make();
        for info in &run {
            scalar.access(info);
        }
        let mut batched = make();
        let mut scratch = BatchScratch::new();
        batched.access_batch(&run, &mut scratch);
        assert_eq!(scalar.stats(), batched.stats());
    }

    #[test]
    fn mixed_replay_batches_match_the_scalar_dispatch_exactly() {
        // Demand, prefetch and writeback records densely interleaved — the
        // shape recorded traces actually have — replayed through the mixed
        // kernel vs per-record scalar dispatch.
        let run = mixed_run(600);
        let ops: Vec<BatchOp> = (0..run.len())
            .map(|i| match i % 4 {
                1 => BatchOp::Prefetch,
                3 => BatchOp::Writeback,
                _ => BatchOp::Demand,
            })
            .collect();
        for make in [
            || -> SetAssocCache { lru_cache(2048, 4) },
            || -> SetAssocCache {
                let config = CacheConfig::new(2048, 8, 64);
                SetAssocCache::new("test", config, Srrip::new(config.sets(), config.ways))
            },
        ] {
            let mut scalar = make();
            let mut scalar_misses = 0;
            for (info, op) in run.iter().zip(&ops) {
                match op {
                    BatchOp::Demand => {
                        scalar_misses += u64::from(!scalar.access(info).is_hit());
                    }
                    BatchOp::Prefetch => {
                        scalar.prefetch(info);
                    }
                    BatchOp::Writeback => {
                        scalar.writeback(info.addr);
                    }
                }
            }
            let mut batched = make();
            let mut scratch = BatchScratch::new();
            let mut misses = 0;
            // Uneven tile boundaries exercise scratch reuse across tiles.
            for (infos, ops) in run.chunks(77).zip(ops.chunks(77)) {
                misses += batched.replay_batch(infos, ops, &mut scratch);
            }
            assert_eq!(scalar.stats(), batched.stats());
            assert_eq!(misses, scalar_misses);
            assert_eq!(scalar.resident_blocks(), batched.resident_blocks());
        }
    }

    #[test]
    fn fused_record_filter_matches_the_scalar_two_level_sequence() {
        // The fused record kernel must route every request exactly like the
        // scalar two-level sequence: the same L1/L2 verdicts, the same
        // escaping records in the same order, the same statistics at both
        // levels.
        let run = mixed_run(600);
        let l1_config = CacheConfig::new(1024, 4, 64);
        let l2_config = CacheConfig::new(4096, 8, 64);
        let make = |config: CacheConfig| {
            SetAssocCache::new("test", config, Lru::new(config.sets(), config.ways))
        };

        // Scalar reference: per-request L1 access, L2 on a miss, the L1
        // victim probed into L2 before the L2 victim escapes.
        let mut l1 = make(l1_config);
        let mut l2 = make(l2_config);
        let mut prefetcher = StridePrefetcher::default();
        let mut expected = Vec::new();
        for info in &run {
            let demand = AccessInfo {
                hint: crate::hint::ReuseHint::Default,
                ..*info
            };
            let mut requests = vec![(demand, false)];
            if let Some(addr) = prefetcher.observe(info.site, info.addr) {
                requests.push((
                    AccessInfo {
                        addr,
                        kind: AccessKind::Read,
                        site: info.site,
                        hint: crate::hint::ReuseHint::Default,
                        region: info.region,
                    },
                    true,
                ));
            }
            for (req, is_prefetch) in requests {
                let out1 = if is_prefetch {
                    l1.prefetch(&req)
                } else {
                    l1.access(&req)
                };
                if out1.hit {
                    continue;
                }
                let l1_victim = out1.evicted.filter(|_| out1.evicted_dirty).map(|b| b * 64);
                let out2 = if is_prefetch {
                    l2.prefetch(&req)
                } else {
                    l2.access(&req)
                };
                if !out2.hit {
                    expected.push(RecordEscape::Request {
                        info: req,
                        prefetch: is_prefetch,
                    });
                }
                let l2_victim = out2.evicted.filter(|_| out2.evicted_dirty).map(|b| b * 64);
                if let Some(addr) = l1_victim {
                    if !l2.writeback(addr) {
                        expected.push(RecordEscape::Writeback(addr));
                    }
                }
                if let Some(addr) = l2_victim {
                    expected.push(RecordEscape::Writeback(addr));
                }
            }
        }

        let mut fused_l1 = make(l1_config);
        let mut fused_l2 = make(l2_config);
        let mut fused_prefetcher = StridePrefetcher::default();
        let mut got = Vec::new();
        // Uneven tile boundaries exercise the per-tile stats flush.
        for tile in run.chunks(77) {
            record_filter_fused(
                &mut fused_l1,
                &mut fused_l2,
                Some(&mut fused_prefetcher),
                tile,
                &mut |escape| got.push(escape),
            );
        }
        assert_eq!(expected, got);
        assert_eq!(l1.stats(), fused_l1.stats());
        assert_eq!(l2.stats(), fused_l2.stats());
        assert_eq!(l1.resident_blocks(), fused_l1.resident_blocks());
        assert_eq!(l2.resident_blocks(), fused_l2.resident_blocks());
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let mut c = lru_cache(4096, 4);
        let mut scratch = BatchScratch::new();
        assert_eq!(c.access_batch(&[], &mut scratch), 0);
        c.prefetch_batch(&[], &mut scratch);
        assert_eq!(c.replay_batch(&[], &[], &mut scratch), 0);
        assert_eq!(c.stats(), &CacheStats::new());
    }

    #[test]
    fn sixty_four_way_associativity_is_supported() {
        let config = CacheConfig::new(64 * 64, 64, 64); // one 64-way set
        let mut c = SetAssocCache::new("llc", config, Lru::new(config.sets(), config.ways));
        for b in 0..64u64 {
            c.access(&AccessInfo::read(b * 64));
        }
        assert_eq!(c.resident_blocks(), 64);
        assert_eq!(c.stats().evictions, 0);
        let outcome = c.access(&AccessInfo::read(64 * 64));
        assert_eq!(outcome.evicted, Some(0), "LRU block evicted once full");
    }
}
