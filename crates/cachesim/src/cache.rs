//! A single set-associative cache with a pluggable replacement policy.
//!
//! The per-access path is the hottest code in the simulator, so the cache is
//! laid out for it: valid/dirty/"reused since fill" flags live in packed
//! per-set bitmask words (one `u64` per set and flag, bit = way) instead of
//! per-block `Vec<bool>`s, the set index is a power-of-two mask instead of a
//! `%`, and the tag scan is fused over packed 8-bit partial tags — one SWAR
//! word comparison covers eight ways, so a miss usually rejects the whole
//! set without loading a single full tag. The replacement policy is a
//! statically-dispatched [`PolicyDispatch`], so hit and fill notifications
//! inline instead of paying a virtual call.

use crate::addr::{block_of, BlockAddr};
use crate::config::CacheConfig;
use crate::policy::PolicyDispatch;
use crate::request::AccessInfo;
use crate::stats::CacheStats;
use crate::swar::{broadcast, eq_byte_lanes, first_lane};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The block that was evicted to make room, if any.
    pub evicted: Option<BlockAddr>,
    /// Whether the evicted block was dirty (its writeback must be sent to the
    /// next level down).
    pub evicted_dirty: bool,
    /// Whether the fill was bypassed (miss with no allocation).
    pub bypassed: bool,
}

impl AccessOutcome {
    /// Returns `true` if the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }
}

/// A set-associative cache.
///
/// The cache stores tags plus packed valid/dirty/"saw a hit since fill"
/// bitmasks; all replacement state lives in the policy.
pub struct SetAssocCache {
    name: &'static str,
    config: CacheConfig,
    ways: usize,
    /// `sets - 1`; sets is asserted to be a power of two by [`CacheConfig`].
    set_mask: u64,
    /// `log2(sets)`, used to derive the 8-bit partial tag.
    set_bits: u32,
    /// `log2(block_bytes)` for the block-address shift.
    block_shift: u32,
    /// All-ways-valid mask: `ways` low bits set.
    full_mask: u64,
    /// `u64` words of packed partial tags per set (`ways.div_ceil(8)`).
    ptag_words: usize,
    tags: Vec<BlockAddr>,
    /// Packed 8-bit partial tags, one byte per way, `ptag_words` words per
    /// set. The low byte of the full tag: a SWAR equality scan over these
    /// words prunes the full-tag comparisons to (almost always) at most one.
    ptags: Vec<u64>,
    /// Per-set valid bits (bit `w` = way `w`).
    valid: Vec<u64>,
    /// Per-set dirty bits.
    dirty: Vec<u64>,
    /// Per-set "hit since fill" bits.
    reused: Vec<u64>,
    policy: PolicyDispatch,
    stats: CacheStats,
}

impl std::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl SetAssocCache {
    /// Creates a cache with the given geometry and replacement policy.
    ///
    /// Accepts anything convertible into a [`PolicyDispatch`]: a concrete
    /// policy value, a `Box` of one (statically dispatched either way), or a
    /// `Box<dyn ReplacementPolicy>` for policies outside the built-in roster.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 64 (the packed per-set metadata
    /// uses one `u64` word per flag).
    pub fn new(name: &'static str, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        let sets = config.sets();
        let blocks = config.blocks();
        assert!(
            config.ways <= 64,
            "associativity {} exceeds the 64 ways supported by packed metadata",
            config.ways
        );
        let full_mask = if config.ways == 64 {
            u64::MAX
        } else {
            (1u64 << config.ways) - 1
        };
        let ptag_words = config.ways.div_ceil(8);
        Self {
            name,
            config,
            ways: config.ways,
            set_mask: sets as u64 - 1,
            set_bits: (sets as u64).trailing_zeros(),
            block_shift: config.block_bytes.trailing_zeros(),
            full_mask,
            ptag_words,
            tags: vec![0; blocks],
            ptags: vec![0; sets * ptag_words],
            valid: vec![0; sets],
            dirty: vec![0; sets],
            reused: vec![0; sets],
            policy: policy.into(),
            stats: CacheStats::new(),
        }
    }

    /// Cache name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Name of the replacement policy managing this cache.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block & self.set_mask) as usize
    }

    /// The 8-bit partial tag of a block: the low byte of its full tag.
    #[inline]
    fn partial_of(&self, block: BlockAddr) -> u8 {
        (block >> self.set_bits) as u8
    }

    /// Fused tag scan over `set`: the SWAR pass over the packed partial tags
    /// nominates candidate ways (usually zero on a miss, one on a hit); only
    /// candidates that are valid get their full tag compared.
    #[inline]
    fn find_way(&self, set: usize, block: BlockAddr) -> Option<usize> {
        let pattern = broadcast(self.partial_of(block));
        let valid = self.valid[set];
        let tags = &self.tags[set * self.ways..][..self.ways];
        let words = &self.ptags[set * self.ptag_words..][..self.ptag_words];
        for (word_index, &word) in words.iter().enumerate() {
            let mut lanes = eq_byte_lanes(word, pattern);
            while lanes != 0 {
                let way = word_index * 8 + first_lane(lanes);
                if way < self.ways && valid & (1u64 << way) != 0 && tags[way] == block {
                    return Some(way);
                }
                lanes &= lanes - 1;
            }
        }
        None
    }

    /// Writes the partial tag of `block` into `way`'s byte lane.
    #[inline]
    fn store_partial(&mut self, set: usize, way: usize, block: BlockAddr) {
        let partial = self.partial_of(block);
        let word = &mut self.ptags[set * self.ptag_words + way / 8];
        let shift = (way % 8) * 8;
        *word = (*word & !(0xFFu64 << shift)) | (u64::from(partial) << shift);
    }

    /// Looks up a block without updating any state. Returns the way if present.
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let block = block_of(addr, self.config.block_bytes);
        self.find_way(self.set_of(block), block)
    }

    /// Performs a demand access, updating replacement state and statistics.
    #[inline]
    pub fn access(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats.record(info.region, outcome.hit);
        outcome
    }

    /// Performs a prefetch access: identical block placement behaviour, but
    /// accounted separately and never bypassed by the policy.
    pub fn prefetch(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats
            .record_prefetch(!outcome.hit && !outcome.bypassed);
        outcome
    }

    fn access_inner(&mut self, info: &AccessInfo) -> AccessOutcome {
        let block = info.addr >> self.block_shift;
        let set = self.set_of(block);

        // Hit path: fused valid-mask + tag scan.
        if let Some(way) = self.find_way(set, block) {
            let bit = 1u64 << way;
            self.reused[set] |= bit;
            if info.is_write() {
                self.dirty[set] |= bit;
            }
            self.policy.on_hit(set, way, info);
            return AccessOutcome {
                hit: true,
                evicted: None,
                evicted_dirty: false,
                bypassed: false,
            };
        }

        // Miss path: maybe bypass.
        if self.policy.should_bypass(set, info) {
            self.stats.bypasses += 1;
            return AccessOutcome {
                hit: false,
                evicted: None,
                evicted_dirty: false,
                bypassed: true,
            };
        }

        // Fill the lowest invalid way if one exists, otherwise ask the policy
        // for a victim.
        let valid = self.valid[set];
        let way = if valid != self.full_mask {
            (!valid).trailing_zeros() as usize
        } else {
            self.policy.choose_victim(set, info)
        };

        let bit = 1u64 << way;
        let idx = set * self.ways + way;
        let mut evicted = None;
        let mut evicted_dirty = false;
        if valid & bit != 0 {
            evicted = Some(self.tags[idx]);
            evicted_dirty = self.dirty[set] & bit != 0;
            self.stats.evictions += 1;
            self.policy
                .on_evict(set, way, self.tags[idx], self.reused[set] & bit != 0);
        }
        self.tags[idx] = block;
        self.store_partial(set, way, block);
        self.valid[set] |= bit;
        if info.is_write() {
            self.dirty[set] |= bit;
        } else {
            self.dirty[set] &= !bit;
        }
        self.reused[set] &= !bit;
        self.policy.on_fill(set, way, info);

        AccessOutcome {
            hit: false,
            evicted,
            evicted_dirty,
            bypassed: false,
        }
    }

    /// Receives the writeback of a dirty victim evicted by the level above.
    ///
    /// Writebacks are non-allocating: a hit refreshes the resident copy (the
    /// block becomes dirty here), a miss is forwarded towards memory without
    /// disturbing the replacement policy. Returns `true` on a hit.
    pub fn writeback(&mut self, addr: u64) -> bool {
        let block = addr >> self.block_shift;
        let set = self.set_of(block);
        let hit = match self.find_way(set, block) {
            Some(way) => {
                self.dirty[set] |= 1u64 << way;
                true
            }
            None => false,
        };
        self.stats.record_writeback(hit);
        hit
    }

    /// Invalidates every block and resets the replacement policy to its
    /// just-constructed state (used between experiment phases). Statistics
    /// keep accumulating across flushes.
    pub fn flush(&mut self) {
        self.valid.fill(0);
        self.dirty.fill(0);
        self.reused.fill(0);
        self.policy.reset();
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lru::Lru;
    use crate::policy::rrip::Srrip;
    use crate::policy::ReplacementPolicy;
    use crate::request::RegionLabel;

    fn lru_cache(size: u64, ways: usize) -> SetAssocCache {
        let config = CacheConfig::new(size, ways, 64);
        SetAssocCache::new("test", config, Box::new(Lru::new(config.sets(), ways)))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = lru_cache(4096, 4);
        assert!(!c.access(&AccessInfo::read(0x100)).is_hit());
        assert!(c.access(&AccessInfo::read(0x100)).is_hit());
        // Same block, different offset: still a hit.
        assert!(c.access(&AccessInfo::read(0x13F)).is_hit());
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        // One set, two ways.
        let mut c = lru_cache(128, 2);
        c.access(&AccessInfo::read(0)); // block A
        c.access(&AccessInfo::read(128)); // block B (same set)
        c.access(&AccessInfo::read(0)); // touch A
        let outcome = c.access(&AccessInfo::read(256)); // block C evicts B
        assert_eq!(outcome.evicted, Some(2));
        assert!(c.access(&AccessInfo::read(0)).is_hit(), "A must survive");
        assert!(!c.access(&AccessInfo::read(128)).is_hit(), "B was evicted");
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = lru_cache(64 * 16, 4);
        for i in 0..64u64 {
            c.access(&AccessInfo::read(i * 64));
        }
        assert_eq!(c.resident_blocks(), 16);
        assert_eq!(c.stats().evictions, 48);
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        let before = c.stats().clone();
        assert!(c.probe(0x200).is_some());
        assert!(c.probe(0x4000).is_none());
        assert_eq!(c.stats(), &before);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0x200));
        c.access(&AccessInfo::read(0x400));
        assert_eq!(c.resident_blocks(), 2);
        c.flush();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(&AccessInfo::read(0x200)).is_hit());
    }

    #[test]
    fn flush_resets_replacement_state() {
        // After a flush the policy must not remember pre-flush recency: the
        // fill order alone decides the next victim.
        let mut c = lru_cache(128, 2);
        c.access(&AccessInfo::read(0)); // A
        c.access(&AccessInfo::read(128)); // B
        c.access(&AccessInfo::read(0)); // touch A
        c.flush();
        c.access(&AccessInfo::read(0)); // A again (fills way 0)
        c.access(&AccessInfo::read(128)); // B again (fills way 1)
                                          // With a stale LRU clock, way 1 (B) would be older than pre-flush A
                                          // stamps; with a proper reset, A is the LRU block now.
        let outcome = c.access(&AccessInfo::read(256));
        assert_eq!(outcome.evicted, Some(0), "A must be the victim after reset");
    }

    #[test]
    fn per_region_stats_are_recorded() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0).with_region(RegionLabel::Property));
        c.access(&AccessInfo::read(0x1000).with_region(RegionLabel::EdgeArray));
        assert_eq!(c.stats().region(RegionLabel::Property).accesses, 2);
        assert_eq!(c.stats().region(RegionLabel::Property).misses, 1);
        assert_eq!(c.stats().region(RegionLabel::EdgeArray).misses, 1);
    }

    #[test]
    fn prefetch_is_not_a_demand_access() {
        let mut c = lru_cache(4096, 4);
        c.prefetch(&AccessInfo::read(0x300));
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetch_accesses, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
        // The prefetched block is resident: a demand access hits.
        assert!(c.access(&AccessInfo::read(0x300)).is_hit());
    }

    #[test]
    fn works_with_rrip_policy_too() {
        let config = CacheConfig::new(64 * 8, 4, 64);
        let mut c = SetAssocCache::new(
            "llc",
            config,
            Box::new(Srrip::new(config.sets(), config.ways)),
        );
        // A small working set with reuse should mostly hit.
        for _ in 0..10 {
            for b in 0..4u64 {
                c.access(&AccessInfo::read(b * 64));
            }
        }
        assert!(c.stats().hits > 30);
        assert_eq!(c.policy_name(), "SRRIP");
    }

    #[test]
    fn works_with_dyn_policies() {
        // The trait object stays the extension point for external policies.
        #[derive(Debug)]
        struct EvictWayZero;

        impl ReplacementPolicy for EvictWayZero {
            fn name(&self) -> &'static str {
                "EvictWayZero"
            }

            fn choose_victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
                0
            }

            fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

            fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}
        }

        let config = CacheConfig::new(128, 2, 64);
        let boxed: Box<dyn ReplacementPolicy> = Box::new(EvictWayZero);
        let mut c = SetAssocCache::new("llc", config, boxed);
        c.access(&AccessInfo::read(0)); // way 0
        c.access(&AccessInfo::read(128)); // way 1
        let outcome = c.access(&AccessInfo::read(256));
        assert_eq!(outcome.evicted, Some(0), "custom policy evicts way 0");
        assert_eq!(c.policy_name(), "EvictWayZero");
    }

    #[test]
    fn write_marks_block_dirty_and_hits_later() {
        let mut c = lru_cache(4096, 4);
        c.access(&AccessInfo::write(0x80));
        assert!(c.access(&AccessInfo::read(0x80)).is_hit());
    }

    #[test]
    fn sixty_four_way_associativity_is_supported() {
        let config = CacheConfig::new(64 * 64, 64, 64); // one 64-way set
        let mut c = SetAssocCache::new("llc", config, Lru::new(config.sets(), config.ways));
        for b in 0..64u64 {
            c.access(&AccessInfo::read(b * 64));
        }
        assert_eq!(c.resident_blocks(), 64);
        assert_eq!(c.stats().evictions, 0);
        let outcome = c.access(&AccessInfo::read(64 * 64));
        assert_eq!(outcome.evicted, Some(0), "LRU block evicted once full");
    }
}
