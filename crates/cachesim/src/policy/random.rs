//! Random replacement (sanity baseline).

use super::{PolicyRng, ReplacementPolicy};
use crate::request::AccessInfo;

/// Evicts a uniformly random way. Useful as a sanity baseline in tests and
/// micro-benchmarks: any scheme that claims thrash resistance should beat it
/// on reuse-heavy traces.
#[derive(Debug, Clone)]
pub struct RandomReplacement {
    ways: usize,
    seed: u64,
    rng: PolicyRng,
}

impl RandomReplacement {
    /// Creates a random-replacement policy.
    pub fn new(_sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            ways,
            seed,
            rng: PolicyRng::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn choose_victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
        self.rng.next_below(self.ways as u64) as usize
    }

    fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

    fn reset(&mut self) {
        self.rng = PolicyRng::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_within_range_and_varied() {
        let mut p = RandomReplacement::new(4, 8, 7);
        let info = AccessInfo::read(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = p.choose_victim(0, &info);
            assert!(v < 8);
            seen.insert(v);
        }
        assert!(seen.len() > 4, "random policy should spread victims");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let info = AccessInfo::read(0);
        let mut a = RandomReplacement::new(1, 4, 9);
        let mut b = RandomReplacement::new(1, 4, 9);
        for _ in 0..50 {
            assert_eq!(a.choose_victim(0, &info), b.choose_victim(0, &info));
        }
    }
}
