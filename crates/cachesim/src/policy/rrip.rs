//! Re-Reference Interval Prediction (RRIP) policies — Jaleel et al., ISCA'10.
//!
//! RRIP associates an M-bit Re-Reference Prediction Value (RRPV) with every
//! cache block; `0` means "expected to be re-referenced immediately",
//! `2^M - 1` means "expected in the distant future". The victim is a block
//! with the maximum RRPV (ageing every block until one reaches the maximum).
//!
//! * **SRRIP** inserts new blocks with a *long* re-reference prediction
//!   (`max - 1`) and promotes to `0` on a hit.
//! * **BRRIP** inserts at `max` most of the time and at `max - 1` with low
//!   probability, which resists thrashing.
//! * **DRRIP** set-duels SRRIP against BRRIP and uses the winner for follower
//!   sets. This is the paper's baseline ("RRIP", Sec. IV-C) and the substrate
//!   GRASP builds on.
//!
//! The reproduction uses a 3-bit RRPV (`max = 7`) exactly as the paper does.

use super::{PolicyRng, ReplacementPolicy};
use crate::request::AccessInfo;

/// Number of RRPV bits used throughout the reproduction (3, as in the paper).
pub const RRPV_BITS: u32 = 3;

/// Maximum (distant) RRPV value: `2^RRPV_BITS - 1 = 7`.
pub const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// The "long re-reference" insertion value used by SRRIP: `RRPV_MAX - 1 = 6`.
pub const RRPV_LONG: u8 = RRPV_MAX - 1;

/// BRRIP inserts at `RRPV_LONG` once every `BRRIP_LONG_ONE_IN` fills,
/// otherwise at `RRPV_MAX` (the ISCA'10 paper uses 1/32).
pub const BRRIP_LONG_ONE_IN: u64 = 32;

/// Per-block RRPV storage shared by every RRIP-derived policy in this crate.
#[derive(Debug, Clone)]
pub struct RrpvArray {
    ways: usize,
    rrpv: Vec<u8>,
}

impl RrpvArray {
    /// Creates storage for `sets` × `ways` blocks, initialised to the distant
    /// value so empty ways look like immediate victims.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Current RRPV of a block.
    #[inline]
    pub fn get(&self, set: usize, way: usize) -> u8 {
        self.rrpv[self.idx(set, way)]
    }

    /// Sets the RRPV of a block.
    #[inline]
    pub fn set(&mut self, set: usize, way: usize, value: u8) {
        debug_assert!(value <= RRPV_MAX);
        let idx = self.idx(set, way);
        self.rrpv[idx] = value;
    }

    /// Resets every RRPV to the distant value (the just-constructed state).
    pub fn reset(&mut self) {
        self.rrpv.fill(RRPV_MAX);
    }

    /// Lowest way of `set` currently at `RRPV_MAX`, scanned eight RRPVs at a
    /// time (used by policies that treat distant blocks as preferred
    /// victims).
    pub fn first_distant(&self, set: usize) -> Option<usize> {
        let base = self.idx(set, 0);
        let slice = &self.rrpv[base..base + self.ways];
        let pattern = crate::swar::broadcast(RRPV_MAX);
        let mut offset = 0;
        while offset + 8 <= slice.len() {
            let word = u64::from_le_bytes(slice[offset..offset + 8].try_into().expect("8 bytes"));
            let lanes = crate::swar::eq_byte_lanes(word, pattern);
            if lanes != 0 {
                return Some(offset + crate::swar::first_lane(lanes));
            }
            offset += 8;
        }
        slice[offset..]
            .iter()
            .position(|&v| v == RRPV_MAX)
            .map(|tail| offset + tail)
    }

    /// Decrements the RRPV of a block towards zero (gradual promotion).
    #[inline]
    pub fn decrement(&mut self, set: usize, way: usize) {
        let idx = self.idx(set, way);
        if self.rrpv[idx] > 0 {
            self.rrpv[idx] -= 1;
        }
    }

    /// Standard RRIP victim search: find a way with `RRPV_MAX`, ageing every
    /// block in the set until one reaches it. Ties break towards the lowest
    /// way index, as in the CRC reference implementation.
    ///
    /// Implemented without the reference loop's repeated scans. The common
    /// case — some block already at `RRPV_MAX` — is a SWAR scan over eight
    /// RRPVs per word. Otherwise, ageing until a block reaches `RRPV_MAX`
    /// adds exactly `RRPV_MAX - max` to every block and the winner is the
    /// first way that held the maximum, so one scalar pass plus one add
    /// replaces the repeated rescans.
    pub fn find_victim(&mut self, set: usize) -> usize {
        // Fast path: some block is already distant.
        if let Some(way) = self.first_distant(set) {
            return way;
        }

        // Slow path: age everything up to RRPV_MAX in one add.
        let base = self.idx(set, 0);
        let slice = &mut self.rrpv[base..base + self.ways];
        let mut max = 0u8;
        let mut victim = 0usize;
        for (way, &value) in slice.iter().enumerate() {
            if value > max {
                max = value;
                victim = way;
            }
        }
        let delta = RRPV_MAX - max;
        for value in slice.iter_mut() {
            *value += delta;
        }
        victim
    }
}

/// Set-dueling monitor (Qureshi et al.): a handful of leader sets are
/// dedicated to each competing policy and a saturating counter (PSEL) tracks
/// which one misses less; follower sets adopt the winner.
#[derive(Debug, Clone)]
pub struct SetDueling {
    sets: usize,
    /// Precomputed per-set role, so the per-fill lookups are an indexed load
    /// instead of two integer divisions.
    roles: Vec<Option<DuelWinner>>,
    psel: i32,
    psel_max: i32,
}

/// Which insertion policy a set should use according to the dueling monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuelWinner {
    /// Use the SRRIP-style (long) insertion.
    Srrip,
    /// Use the BRRIP-style (distant, occasionally long) insertion.
    Brrip,
}

impl SetDueling {
    /// Creates a dueling monitor for `sets` sets with 32 leader sets per
    /// policy (or fewer for tiny caches) and a 10-bit PSEL counter.
    pub fn new(sets: usize) -> Self {
        // One leader pair every `stride` sets gives ~32 leaders per policy for
        // a 1024-set LLC and degrades gracefully for smaller caches.
        let leader_stride = (sets / 32).max(2);
        let roles = (0..sets.max(leader_stride))
            .map(|set| match set % leader_stride {
                0 => Some(DuelWinner::Srrip),
                1 => Some(DuelWinner::Brrip),
                _ => None,
            })
            .collect();
        Self {
            sets,
            roles,
            psel: 0,
            psel_max: 512,
        }
    }

    /// Returns the policy that the given set must *model* (leader sets) or
    /// `None` when it is a follower.
    #[inline]
    pub fn leader_policy(&self, set: usize) -> Option<DuelWinner> {
        self.roles[set]
    }

    /// The policy a follower set should use right now.
    pub fn winner(&self) -> DuelWinner {
        if self.psel >= 0 {
            DuelWinner::Srrip
        } else {
            DuelWinner::Brrip
        }
    }

    /// Effective insertion policy for a set (leader sets always model their
    /// assigned policy).
    pub fn policy_for_set(&self, set: usize) -> DuelWinner {
        self.leader_policy(set).unwrap_or_else(|| self.winner())
    }

    /// Records a miss in `set`; misses in a leader set vote against its
    /// policy.
    pub fn record_miss(&mut self, set: usize) {
        match self.leader_policy(set) {
            Some(DuelWinner::Srrip) => {
                self.psel = (self.psel - 1).max(-self.psel_max);
            }
            Some(DuelWinner::Brrip) => {
                self.psel = (self.psel + 1).min(self.psel_max);
            }
            None => {}
        }
    }

    /// Number of sets the monitor was built for.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Resets the PSEL counter to its neutral starting value.
    pub fn reset(&mut self) {
        self.psel = 0;
    }
}

/// Static RRIP (SRRIP-HP): insert at `RRPV_LONG`, promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Srrip {
    rrpv: RrpvArray,
}

impl Srrip {
    /// Creates an SRRIP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, RRPV_LONG);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }

    fn reset(&mut self) {
        self.rrpv.reset();
    }
}

/// Bimodal RRIP (BRRIP): insert at `RRPV_MAX` most of the time, `RRPV_LONG`
/// infrequently; promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Brrip {
    rrpv: RrpvArray,
    seed: u64,
    rng: PolicyRng,
}

impl Brrip {
    /// Creates a BRRIP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            seed,
            rng: PolicyRng::new(seed),
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &'static str {
        "BRRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let value = if self.rng.one_in(BRRIP_LONG_ONE_IN) {
            RRPV_LONG
        } else {
            RRPV_MAX
        };
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.rng = PolicyRng::new(self.seed);
    }
}

/// Dynamic RRIP (DRRIP): set-duels SRRIP against BRRIP. This is the scheme
/// the paper calls "RRIP" and uses as the baseline for Figs. 5–10.
#[derive(Debug, Clone)]
pub struct Drrip {
    rrpv: RrpvArray,
    dueling: SetDueling,
    seed: u64,
    rng: PolicyRng,
}

impl Drrip {
    /// Creates a DRRIP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            dueling: SetDueling::new(sets),
            seed,
            rng: PolicyRng::new(seed),
        }
    }

    /// Insertion value for a fill in `set` according to the dueling state.
    fn insertion_value(&mut self, set: usize) -> u8 {
        match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "RRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        // A fill means the request missed: inform the dueling monitor.
        self.dueling.record_miss(set);
        let value = self.insertion_value(set);
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.dueling.reset();
        self.rng = PolicyRng::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrpv_array_victim_search_ages_blocks() {
        let mut rrpv = RrpvArray::new(1, 4);
        for way in 0..4 {
            rrpv.set(0, way, 2);
        }
        rrpv.set(0, 2, 5);
        // Victim search must age everyone until way 2 (the largest) reaches 7.
        let victim = rrpv.find_victim(0);
        assert_eq!(victim, 2);
        // Other blocks have aged by the same amount.
        assert_eq!(rrpv.get(0, 0), 4);
    }

    #[test]
    fn rrpv_decrement_saturates_at_zero() {
        let mut rrpv = RrpvArray::new(1, 1);
        rrpv.set(0, 0, 1);
        rrpv.decrement(0, 0);
        rrpv.decrement(0, 0);
        assert_eq!(rrpv.get(0, 0), 0);
    }

    #[test]
    fn srrip_inserts_long_and_promotes_on_hit() {
        let mut p = Srrip::new(2, 4);
        let info = AccessInfo::read(0);
        p.on_fill(0, 1, &info);
        assert_eq!(p.rrpv.get(0, 1), RRPV_LONG);
        p.on_hit(0, 1, &info);
        assert_eq!(p.rrpv.get(0, 1), 0);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(1, 1, 3);
        let info = AccessInfo::read(0);
        let mut distant = 0;
        let trials = 1000;
        for _ in 0..trials {
            p.on_fill(0, 0, &info);
            if p.rrpv.get(0, 0) == RRPV_MAX {
                distant += 1;
            }
        }
        let frac = distant as f64 / trials as f64;
        assert!(
            frac > 0.9,
            "BRRIP should insert distant most of the time ({frac})"
        );
        assert!(frac < 1.0, "BRRIP must occasionally insert long");
    }

    #[test]
    fn dueling_monitor_tracks_leader_misses() {
        let mut d = SetDueling::new(64);
        assert_eq!(d.winner(), DuelWinner::Srrip);
        // Pound the SRRIP leader sets with misses: BRRIP should win.
        for _ in 0..600 {
            d.record_miss(0); // set 0 is an SRRIP leader
        }
        assert_eq!(d.winner(), DuelWinner::Brrip);
        // Follower sets adopt the winner, leaders keep their identity.
        assert_eq!(d.policy_for_set(0), DuelWinner::Srrip);
        assert_eq!(d.policy_for_set(1), DuelWinner::Brrip);
        assert_eq!(d.policy_for_set(5), DuelWinner::Brrip);
    }

    #[test]
    fn dueling_counter_saturates() {
        let mut d = SetDueling::new(64);
        for _ in 0..10_000 {
            d.record_miss(1); // BRRIP leader -> votes for SRRIP
        }
        assert_eq!(d.winner(), DuelWinner::Srrip);
        for _ in 0..10_000 {
            d.record_miss(0);
        }
        assert_eq!(d.winner(), DuelWinner::Brrip);
    }

    #[test]
    fn drrip_uses_leader_policies() {
        let mut p = Drrip::new(64, 4, 1);
        let info = AccessInfo::read(0);
        // Fill in an SRRIP leader set: always long insertion.
        p.on_fill(0, 0, &info);
        assert_eq!(p.rrpv.get(0, 0), RRPV_LONG);
        // Fill repeatedly in a BRRIP leader set: mostly distant.
        let mut distant = 0;
        for _ in 0..200 {
            p.on_fill(1, 0, &info);
            if p.rrpv.get(1, 0) == RRPV_MAX {
                distant += 1;
            }
        }
        assert!(distant > 150);
    }
}
