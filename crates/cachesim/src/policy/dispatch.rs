//! Static policy dispatch for the simulation hot path.
//!
//! [`crate::cache::SetAssocCache`] used to store its replacement policy as a
//! `Box<dyn ReplacementPolicy>`, paying an indirect call on every hit, fill
//! and eviction notification — by far the hottest edges of the simulator.
//! [`PolicyDispatch`] replaces that with a closed enum over every policy of
//! the evaluation, so the per-access calls compile down to a jump table over
//! inlined monomorphic bodies.
//!
//! The [`super::ReplacementPolicy`] trait remains the extension point:
//! policies outside the paper's roster can still be plugged in through the
//! [`PolicyDispatch::Dyn`] escape hatch (used by the cross-policy property
//! suite), which keeps exactly the old virtual-call behaviour.

use super::grasp::Grasp;
use super::hawkeye::Hawkeye;
use super::leeway::Leeway;
use super::lru::Lru;
use super::pin::PinX;
use super::random::RandomReplacement;
use super::rrip::{Brrip, Drrip, Srrip};
use super::ship::ShipMem;
use super::ReplacementPolicy;
use crate::addr::BlockAddr;
use crate::request::AccessInfo;

/// A replacement policy with statically-dispatched per-access methods.
///
/// Every online policy of the paper's evaluation has a dedicated variant;
/// Belady's OPT is offline (a trace post-processor, see
/// [`crate::policy::opt`]) and therefore has no variant. Third-party
/// policies ride in [`PolicyDispatch::Dyn`].
pub enum PolicyDispatch {
    /// Least Recently Used.
    Lru(Lru),
    /// Random replacement.
    Random(RandomReplacement),
    /// Static RRIP.
    Srrip(Srrip),
    /// Bimodal RRIP.
    Brrip(Brrip),
    /// Dynamic RRIP (the paper's baseline).
    Drrip(Drrip),
    /// SHiP-MEM.
    ShipMem(ShipMem),
    /// Hawkeye.
    Hawkeye(Hawkeye),
    /// Leeway.
    Leeway(Leeway),
    /// XMem-style pinning (PIN-X).
    Pin(PinX),
    /// GRASP and its ablations.
    Grasp(Grasp),
    /// Escape hatch for policies outside the paper's roster; keeps the
    /// dynamic-dispatch behaviour of the trait object.
    Dyn(Box<dyn ReplacementPolicy>),
}

/// Forwards a method call to the concrete policy in each variant.
macro_rules! dispatch {
    ($self:expr, $policy:pat => $call:expr) => {
        match $self {
            PolicyDispatch::Lru($policy) => $call,
            PolicyDispatch::Random($policy) => $call,
            PolicyDispatch::Srrip($policy) => $call,
            PolicyDispatch::Brrip($policy) => $call,
            PolicyDispatch::Drrip($policy) => $call,
            PolicyDispatch::ShipMem($policy) => $call,
            PolicyDispatch::Hawkeye($policy) => $call,
            PolicyDispatch::Leeway($policy) => $call,
            PolicyDispatch::Pin($policy) => $call,
            PolicyDispatch::Grasp($policy) => $call,
            PolicyDispatch::Dyn($policy) => $call,
        }
    };
}

impl PolicyDispatch {
    /// Human-readable policy name used in reports.
    pub fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    /// See [`ReplacementPolicy::should_bypass`].
    #[inline]
    pub fn should_bypass(&mut self, set: usize, info: &AccessInfo) -> bool {
        dispatch!(self, p => p.should_bypass(set, info))
    }

    /// See [`ReplacementPolicy::choose_victim`].
    #[inline]
    pub fn choose_victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        dispatch!(self, p => p.choose_victim(set, info))
    }

    /// See [`ReplacementPolicy::on_fill`].
    #[inline]
    pub fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        dispatch!(self, p => p.on_fill(set, way, info))
    }

    /// See [`ReplacementPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        dispatch!(self, p => p.on_hit(set, way, info))
    }

    /// See [`ReplacementPolicy::on_evict`].
    #[inline]
    pub fn on_evict(&mut self, set: usize, way: usize, block: BlockAddr, had_reuse: bool) {
        dispatch!(self, p => p.on_evict(set, way, block, had_reuse))
    }

    /// See [`ReplacementPolicy::reset`]: restores the policy to its
    /// just-constructed state (used by cache flushes between phases).
    pub fn reset(&mut self) {
        dispatch!(self, p => p.reset())
    }
}

/// The dispatcher is itself a policy, so generic code — notably the shared
/// per-access mutation path of `SetAssocCache`, which the batched replay
/// kernel monomorphizes per concrete policy — can also run against the full
/// dispatcher on the scalar path. Each method forwards to the inherent
/// statically-dispatched implementation above.
impl ReplacementPolicy for PolicyDispatch {
    fn name(&self) -> &'static str {
        PolicyDispatch::name(self)
    }

    #[inline]
    fn should_bypass(&mut self, set: usize, info: &AccessInfo) -> bool {
        PolicyDispatch::should_bypass(self, set, info)
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        PolicyDispatch::choose_victim(self, set, info)
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        PolicyDispatch::on_fill(self, set, way, info)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        PolicyDispatch::on_hit(self, set, way, info)
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize, block: BlockAddr, had_reuse: bool) {
        PolicyDispatch::on_evict(self, set, way, block, had_reuse)
    }

    fn reset(&mut self) {
        PolicyDispatch::reset(self)
    }
}

impl std::fmt::Debug for PolicyDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PolicyDispatch").field(&self.name()).finish()
    }
}

/// Static-dispatch conversions: owning a concrete policy (boxed or not)
/// yields its dedicated variant, so existing `Box::new(Lru::new(..))` call
/// sites transparently gain the fast path.
macro_rules! impl_from_policy {
    ($($ty:ident => $variant:ident),* $(,)?) => {$(
        impl From<$ty> for PolicyDispatch {
            fn from(policy: $ty) -> Self {
                PolicyDispatch::$variant(policy)
            }
        }

        impl From<Box<$ty>> for PolicyDispatch {
            fn from(policy: Box<$ty>) -> Self {
                PolicyDispatch::$variant(*policy)
            }
        }
    )*};
}

impl_from_policy! {
    Lru => Lru,
    RandomReplacement => Random,
    Srrip => Srrip,
    Brrip => Brrip,
    Drrip => Drrip,
    ShipMem => ShipMem,
    Hawkeye => Hawkeye,
    Leeway => Leeway,
    PinX => Pin,
    Grasp => Grasp,
}

impl From<Box<dyn ReplacementPolicy>> for PolicyDispatch {
    fn from(policy: Box<dyn ReplacementPolicy>) -> Self {
        PolicyDispatch::Dyn(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_policies_take_the_static_path() {
        let d: PolicyDispatch = Lru::new(4, 4).into();
        assert!(matches!(d, PolicyDispatch::Lru(_)));
        assert_eq!(d.name(), "LRU");
        let d: PolicyDispatch = Box::new(Grasp::new(4, 4, 1)).into();
        assert!(matches!(d, PolicyDispatch::Grasp(_)));
    }

    #[test]
    fn trait_objects_take_the_dyn_path() {
        let boxed: Box<dyn ReplacementPolicy> = Box::new(Srrip::new(4, 4));
        let d: PolicyDispatch = boxed.into();
        assert!(matches!(d, PolicyDispatch::Dyn(_)));
        assert_eq!(d.name(), "SRRIP");
    }

    #[test]
    fn dispatch_forwards_calls() {
        let mut d: PolicyDispatch = Lru::new(1, 2).into();
        let info = AccessInfo::read(0);
        d.on_fill(0, 0, &info);
        d.on_fill(0, 1, &info);
        d.on_hit(0, 0, &info);
        assert_eq!(d.choose_victim(0, &info), 1);
        assert!(!d.should_bypass(0, &info));
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let mut d: PolicyDispatch = Lru::new(1, 2).into();
        let info = AccessInfo::read(0);
        d.on_fill(0, 0, &info);
        d.on_fill(0, 1, &info);
        d.on_hit(0, 0, &info);
        d.reset();
        // After a reset no pre-reset recency survives: the refill order alone
        // decides the victim.
        d.on_fill(0, 0, &info);
        d.on_fill(0, 1, &info);
        assert_eq!(d.choose_victim(0, &info), 0);
    }
}
