//! XMem-style pinning (PIN-X) adapted to graph analytics (Sec. IV-C / V-B).
//!
//! XMem (Vijaykumar et al., ISCA'18) lets software pin cache blocks so the
//! hardware never evicts them. The paper adapts it to graph analytics by
//! pinning blocks from the High Reuse Region (identified through the GRASP
//! interface) and explores four configurations, PIN-25/50/75/100, where X is
//! the percentage of LLC capacity reserved for pinned blocks. Pinned blocks
//! cannot be evicted; the unreserved capacity is managed by the base RRIP
//! scheme. The rigidity of pinning — pinned blocks stay even after their reuse
//! dries up — is what GRASP's flexible policies improve upon.

use super::rrip::{RrpvArray, RRPV_LONG, RRPV_MAX};
use super::ReplacementPolicy;
use crate::addr::BlockAddr;
use crate::hint::ReuseHint;
use crate::request::AccessInfo;

/// The PIN-X policy: `reserved_fraction` of each set's ways may hold pinned
/// blocks from the High Reuse Region.
#[derive(Debug, Clone)]
pub struct PinX {
    rrpv: RrpvArray,
    ways: usize,
    pinned: Vec<bool>,
    pinned_per_set: Vec<usize>,
    reserved_ways: usize,
    reserved_percent: u8,
}

impl PinX {
    /// Creates a PIN-X policy reserving `percent`% of the ways of every set
    /// for pinned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn new(sets: usize, ways: usize, percent: u8) -> Self {
        assert!((1..=100).contains(&percent), "percent must be in 1..=100");
        let reserved_ways = ((ways * percent as usize) / 100).max(1);
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            pinned: vec![false; sets * ways],
            pinned_per_set: vec![0; sets],
            reserved_ways,
            reserved_percent: percent,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Number of ways per set reserved for pinned blocks.
    pub fn reserved_ways(&self) -> usize {
        self.reserved_ways
    }

    /// The configured reservation percentage.
    pub fn reserved_percent(&self) -> u8 {
        self.reserved_percent
    }

    /// Number of blocks currently pinned in `set`.
    pub fn pinned_in_set(&self, set: usize) -> usize {
        self.pinned_per_set[set]
    }

    fn try_pin(&mut self, set: usize, way: usize) {
        let idx = self.idx(set, way);
        if !self.pinned[idx] && self.pinned_per_set[set] < self.reserved_ways {
            self.pinned[idx] = true;
            self.pinned_per_set[set] += 1;
        }
    }
}

impl ReplacementPolicy for PinX {
    fn name(&self) -> &'static str {
        match self.reserved_percent {
            25 => "PIN-25",
            50 => "PIN-50",
            75 => "PIN-75",
            100 => "PIN-100",
            _ => "PIN-X",
        }
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Standard RRIP victim search restricted to unpinned ways.
        loop {
            let mut all_pinned = true;
            for way in 0..self.ways {
                if self.pinned[self.idx(set, way)] {
                    continue;
                }
                all_pinned = false;
                if self.rrpv.get(set, way) == RRPV_MAX {
                    return way;
                }
            }
            if all_pinned {
                // Every way is pinned (only possible with PIN-100): fall back
                // to evicting way 0 so forward progress is maintained. XMem
                // avoids this by bounding pin requests; the guard keeps the
                // simulator robust.
                return 0;
            }
            for way in 0..self.ways {
                if !self.pinned[self.idx(set, way)] {
                    let v = self.rrpv.get(set, way);
                    if v < RRPV_MAX {
                        self.rrpv.set(set, way, v + 1);
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let idx = self.idx(set, way);
        // The way may have been vacated by an eviction that already cleared
        // the pin; make sure the bookkeeping is consistent.
        if self.pinned[idx] {
            self.pinned[idx] = false;
            self.pinned_per_set[set] = self.pinned_per_set[set].saturating_sub(1);
        }
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
            self.rrpv.set(set, way, 0);
        } else {
            self.rrpv.set(set, way, RRPV_LONG);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, _had_reuse: bool) {
        let idx = self.idx(set, way);
        if self.pinned[idx] {
            self.pinned[idx] = false;
            self.pinned_per_set[set] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RegionLabel;

    fn high(addr: u64) -> AccessInfo {
        AccessInfo::read(addr)
            .with_hint(ReuseHint::High)
            .with_region(RegionLabel::Property)
    }

    fn low(addr: u64) -> AccessInfo {
        AccessInfo::read(addr).with_hint(ReuseHint::Low)
    }

    #[test]
    fn reservation_percentages_map_to_ways() {
        assert_eq!(PinX::new(4, 16, 25).reserved_ways(), 4);
        assert_eq!(PinX::new(4, 16, 50).reserved_ways(), 8);
        assert_eq!(PinX::new(4, 16, 75).reserved_ways(), 12);
        assert_eq!(PinX::new(4, 16, 100).reserved_ways(), 16);
        // At least one way is always reserved.
        assert_eq!(PinX::new(4, 2, 25).reserved_ways(), 1);
    }

    #[test]
    #[should_panic(expected = "percent must be in 1..=100")]
    fn zero_percent_panics() {
        let _ = PinX::new(4, 16, 0);
    }

    #[test]
    fn high_reuse_fills_are_pinned_up_to_the_quota() {
        let mut p = PinX::new(1, 4, 50); // 2 reserved ways
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2, "quota limits pinning");
    }

    #[test]
    fn pinned_blocks_are_never_victims() {
        let mut p = PinX::new(1, 4, 50);
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &low(128));
        p.on_fill(0, 3, &low(192));
        for _ in 0..20 {
            let victim = p.choose_victim(0, &low(256));
            assert!(victim == 2 || victim == 3, "victim {victim} must be unpinned");
        }
    }

    #[test]
    fn eviction_releases_the_pin() {
        let mut p = PinX::new(1, 4, 25); // 1 reserved way
        p.on_fill(0, 0, &high(0));
        assert_eq!(p.pinned_in_set(0), 1);
        p.on_evict(0, 0, 0, true);
        assert_eq!(p.pinned_in_set(0), 0);
        // The freed quota can be used again.
        p.on_fill(0, 1, &high(64));
        assert_eq!(p.pinned_in_set(0), 1);
    }

    #[test]
    fn pin_100_fully_pinned_set_still_makes_progress() {
        let mut p = PinX::new(1, 2, 100);
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        assert_eq!(p.pinned_in_set(0), 2);
        // All ways pinned: the guard still returns some victim.
        let victim = p.choose_victim(0, &low(128));
        assert!(victim < 2);
    }

    #[test]
    fn hits_can_pin_previously_unpinned_high_blocks() {
        let mut p = PinX::new(1, 4, 50);
        // Filled while quota was exhausted by other ways.
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2);
        // Evict a pinned way, then a hit on way 2 grabs the quota.
        p.on_evict(0, 0, 0, true);
        p.on_hit(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2);
    }

    #[test]
    fn names_follow_configuration() {
        assert_eq!(PinX::new(1, 4, 25).name(), "PIN-25");
        assert_eq!(PinX::new(1, 4, 100).name(), "PIN-100");
        assert_eq!(PinX::new(1, 4, 60).name(), "PIN-X");
    }
}
