//! XMem-style pinning (PIN-X) adapted to graph analytics (Sec. IV-C / V-B).
//!
//! XMem (Vijaykumar et al., ISCA'18) lets software pin cache blocks so the
//! hardware never evicts them. The paper adapts it to graph analytics by
//! pinning blocks from the High Reuse Region (identified through the GRASP
//! interface) and explores four configurations, PIN-25/50/75/100, where X is
//! the percentage of LLC capacity reserved for pinned blocks. Pinned blocks
//! cannot be evicted; the unreserved capacity is managed by the base RRIP
//! scheme. The rigidity of pinning — pinned blocks stay even after their reuse
//! dries up — is what GRASP's flexible policies improve upon.

use super::rrip::{RrpvArray, RRPV_LONG, RRPV_MAX};
use super::ReplacementPolicy;
use crate::addr::BlockAddr;
use crate::hint::ReuseHint;
use crate::request::AccessInfo;

/// The PIN-X policy: `reserved_fraction` of each set's ways may hold pinned
/// blocks from the High Reuse Region.
#[derive(Debug, Clone)]
pub struct PinX {
    rrpv: RrpvArray,
    ways: usize,
    /// Per-set pin bits (bit `w` = way `w`), so the victim search and the
    /// fill/evict bookkeeping are bit operations instead of `Vec<bool>`
    /// loads.
    pinned: Vec<u64>,
    reserved_ways: usize,
    reserved_percent: u8,
}

impl PinX {
    /// Creates a PIN-X policy reserving `percent`% of the ways of every set
    /// for pinned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn new(sets: usize, ways: usize, percent: u8) -> Self {
        assert!((1..=100).contains(&percent), "percent must be in 1..=100");
        assert!(ways <= 64, "PIN-X supports at most 64 ways");
        let reserved_ways = ((ways * percent as usize) / 100).max(1);
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            pinned: vec![0; sets],
            reserved_ways,
            reserved_percent: percent,
        }
    }

    /// Number of ways per set reserved for pinned blocks.
    pub fn reserved_ways(&self) -> usize {
        self.reserved_ways
    }

    /// The configured reservation percentage.
    pub fn reserved_percent(&self) -> u8 {
        self.reserved_percent
    }

    /// Number of blocks currently pinned in `set`.
    pub fn pinned_in_set(&self, set: usize) -> usize {
        self.pinned[set].count_ones() as usize
    }

    fn try_pin(&mut self, set: usize, way: usize) {
        let bit = 1u64 << way;
        let mask = self.pinned[set];
        if mask & bit == 0 && (mask.count_ones() as usize) < self.reserved_ways {
            self.pinned[set] = mask | bit;
        }
    }
}

impl ReplacementPolicy for PinX {
    fn name(&self) -> &'static str {
        match self.reserved_percent {
            25 => "PIN-25",
            50 => "PIN-50",
            75 => "PIN-75",
            100 => "PIN-100",
            _ => "PIN-X",
        }
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Standard RRIP victim search restricted to unpinned ways. As in
        // `RrpvArray::find_victim`, the reference loop's repeated
        // scan-and-age passes collapse into one pass: ageing the unpinned
        // ways until one reaches `RRPV_MAX` adds exactly `RRPV_MAX - max`
        // to each, and the victim is the first unpinned way that held the
        // maximum.
        let full = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        let mut unpinned = !self.pinned[set] & full;
        if unpinned == 0 {
            // Every way is pinned (only possible with PIN-100): fall back
            // to evicting way 0 so forward progress is maintained. XMem
            // avoids this by bounding pin requests; the guard keeps the
            // simulator robust.
            return 0;
        }
        let mut best: Option<(u8, usize)> = None;
        let mut scan = unpinned;
        while scan != 0 {
            let way = scan.trailing_zeros() as usize;
            let value = self.rrpv.get(set, way);
            if value == RRPV_MAX {
                return way;
            }
            if best.is_none_or(|(max, _)| value > max) {
                best = Some((value, way));
            }
            scan &= scan - 1;
        }
        let (max, victim) = best.expect("at least one unpinned way");
        let delta = RRPV_MAX - max;
        while unpinned != 0 {
            let way = unpinned.trailing_zeros() as usize;
            let value = self.rrpv.get(set, way);
            self.rrpv.set(set, way, value + delta);
            unpinned &= unpinned - 1;
        }
        victim
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        // The way may have been vacated by an eviction that already cleared
        // the pin; make sure the bookkeeping is consistent.
        self.pinned[set] &= !(1u64 << way);
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
            self.rrpv.set(set, way, 0);
        } else {
            self.rrpv.set(set, way, RRPV_LONG);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, _had_reuse: bool) {
        self.pinned[set] &= !(1u64 << way);
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.pinned.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RegionLabel;

    fn high(addr: u64) -> AccessInfo {
        AccessInfo::read(addr)
            .with_hint(ReuseHint::High)
            .with_region(RegionLabel::Property)
    }

    fn low(addr: u64) -> AccessInfo {
        AccessInfo::read(addr).with_hint(ReuseHint::Low)
    }

    #[test]
    fn reservation_percentages_map_to_ways() {
        assert_eq!(PinX::new(4, 16, 25).reserved_ways(), 4);
        assert_eq!(PinX::new(4, 16, 50).reserved_ways(), 8);
        assert_eq!(PinX::new(4, 16, 75).reserved_ways(), 12);
        assert_eq!(PinX::new(4, 16, 100).reserved_ways(), 16);
        // At least one way is always reserved.
        assert_eq!(PinX::new(4, 2, 25).reserved_ways(), 1);
    }

    #[test]
    #[should_panic(expected = "percent must be in 1..=100")]
    fn zero_percent_panics() {
        let _ = PinX::new(4, 16, 0);
    }

    #[test]
    fn high_reuse_fills_are_pinned_up_to_the_quota() {
        let mut p = PinX::new(1, 4, 50); // 2 reserved ways
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2, "quota limits pinning");
    }

    #[test]
    fn pinned_blocks_are_never_victims() {
        let mut p = PinX::new(1, 4, 50);
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &low(128));
        p.on_fill(0, 3, &low(192));
        for _ in 0..20 {
            let victim = p.choose_victim(0, &low(256));
            assert!(
                victim == 2 || victim == 3,
                "victim {victim} must be unpinned"
            );
        }
    }

    #[test]
    fn eviction_releases_the_pin() {
        let mut p = PinX::new(1, 4, 25); // 1 reserved way
        p.on_fill(0, 0, &high(0));
        assert_eq!(p.pinned_in_set(0), 1);
        p.on_evict(0, 0, 0, true);
        assert_eq!(p.pinned_in_set(0), 0);
        // The freed quota can be used again.
        p.on_fill(0, 1, &high(64));
        assert_eq!(p.pinned_in_set(0), 1);
    }

    #[test]
    fn pin_100_fully_pinned_set_still_makes_progress() {
        let mut p = PinX::new(1, 2, 100);
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        assert_eq!(p.pinned_in_set(0), 2);
        // All ways pinned: the guard still returns some victim.
        let victim = p.choose_victim(0, &low(128));
        assert!(victim < 2);
    }

    #[test]
    fn hits_can_pin_previously_unpinned_high_blocks() {
        let mut p = PinX::new(1, 4, 50);
        // Filled while quota was exhausted by other ways.
        p.on_fill(0, 0, &high(0));
        p.on_fill(0, 1, &high(64));
        p.on_fill(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2);
        // Evict a pinned way, then a hit on way 2 grabs the quota.
        p.on_evict(0, 0, 0, true);
        p.on_hit(0, 2, &high(128));
        assert_eq!(p.pinned_in_set(0), 2);
    }

    #[test]
    fn names_follow_configuration() {
        assert_eq!(PinX::new(1, 4, 25).name(), "PIN-25");
        assert_eq!(PinX::new(1, 4, 100).name(), "PIN-100");
        assert_eq!(PinX::new(1, 4, 60).name(), "PIN-X");
    }
}
