//! Least-Recently-Used replacement.

use super::ReplacementPolicy;
use crate::request::AccessInfo;
use crate::swar::{broadcast, eq_byte_lanes, first_lane};

/// High bit of every byte lane.
const LANE_HIGH: u64 = 0x8080_8080_8080_8080;

/// True LRU, kept as a per-set recency permutation packed into `u64` words:
/// every block holds an 8-bit rank (0 = MRU, `ways - 1` = LRU) and a hit or
/// fill moves the block to rank 0, pushing the more-recent blocks down by
/// one. The push-down is a branch-free SWAR add — one compare/add pair
/// covers eight ways — and the victim scan is the same byte-lane equality
/// scan the cache uses for partial tags. Victims are identical to a
/// timestamp implementation: both realize the exact move-to-front order.
///
/// LRU is the reference point of the OPT study (Fig. 11 / Table VII reports
/// "% misses eliminated over LRU") and is also used for the L1 and L2 levels
/// of the hierarchy, as in commodity cores.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    /// Packed rank bytes, `words_per_set` words per set. Lanes beyond `ways`
    /// hold `0xFF`, which the SWAR update never increments (no carry into
    /// neighbouring lanes) and the victim scan never matches.
    ranks: Vec<u64>,
    words_per_set: usize,
}

/// The identity-permutation words for one set (`0, 1, 2, ...` with `0xFF`
/// padding lanes).
fn identity_words(ways: usize, words_per_set: usize) -> Vec<u64> {
    let mut words = vec![0u64; words_per_set];
    for lane in 0..words_per_set * 8 {
        let value = if lane < ways { lane as u64 } else { 0xFF };
        words[lane / 8] |= value << ((lane % 8) * 8);
    }
    words
}

impl Lru {
    /// Creates an LRU policy for a cache of `sets` × `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` exceeds 64 (ranks must stay below the byte lanes'
    /// sign bit for the SWAR compare).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways <= 64, "LRU supports at most 64 ways");
        let words_per_set = ways.div_ceil(8);
        let identity = identity_words(ways, words_per_set);
        let mut ranks = Vec::with_capacity(sets * words_per_set);
        for _ in 0..sets {
            ranks.extend_from_slice(&identity);
        }
        Self {
            ways,
            ranks,
            words_per_set,
        }
    }

    /// Current rank of a way (test/diagnostic helper).
    #[cfg(test)]
    fn rank(&self, set: usize, way: usize) -> u8 {
        let word = self.ranks[set * self.words_per_set + way / 8];
        (word >> ((way % 8) * 8)) as u8
    }

    /// Moves `way` to rank 0, incrementing every way that was more recent.
    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        let base = set * self.words_per_set;
        let old_shift = (way % 8) * 8;
        let old = (self.ranks[base + way / 8] >> old_shift) as u8;
        if old == 0 {
            return; // already MRU: nothing moves
        }
        let threshold = broadcast(old);
        for word in &mut self.ranks[base..base + self.words_per_set] {
            // Per-lane `rank < old` for lanes below 0x80: the high bit of
            // `(lane | 0x80) - old` is clear exactly when lane < old.
            // Padding lanes (0xFF) always compare "not less" and never
            // increment, so no carry crosses lanes.
            let ge_mask = (*word | LANE_HIGH).wrapping_sub(threshold);
            *word = word.wrapping_add((!ge_mask & LANE_HIGH) >> 7);
        }
        // The touched lane itself was not below its own rank: clear it.
        let word = &mut self.ranks[base + way / 8];
        *word &= !(0xFFu64 << old_shift);
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        let base = set * self.words_per_set;
        let pattern = broadcast((self.ways - 1) as u8);
        for word_index in 0..self.words_per_set {
            let lanes = eq_byte_lanes(self.ranks[base + word_index], pattern);
            if lanes != 0 {
                return word_index * 8 + first_lane(lanes);
            }
        }
        unreachable!("ranks form a permutation of 0..ways")
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn reset(&mut self) {
        let identity = identity_words(self.ways, self.words_per_set);
        for (index, word) in self.ranks.iter_mut().enumerate() {
            *word = identity[index % self.words_per_set];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_least_recently_touched() {
        let mut lru = Lru::new(1, 4);
        let info = AccessInfo::read(0);
        for way in 0..4 {
            lru.on_fill(0, way, &info);
        }
        // Touch ways 0, 2, 3 -> way 1 is the victim.
        lru.on_hit(0, 0, &info);
        lru.on_hit(0, 2, &info);
        lru.on_hit(0, 3, &info);
        assert_eq!(lru.choose_victim(0, &info), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        let info = AccessInfo::read(0);
        lru.on_fill(0, 0, &info);
        lru.on_fill(0, 1, &info);
        lru.on_fill(1, 0, &info);
        lru.on_fill(1, 1, &info);
        lru.on_hit(0, 0, &info);
        lru.on_hit(1, 1, &info);
        assert_eq!(lru.choose_victim(0, &info), 1);
        assert_eq!(lru.choose_victim(1, &info), 0);
    }

    #[test]
    fn never_bypasses() {
        let mut lru = Lru::new(1, 2);
        assert!(!lru.should_bypass(0, &AccessInfo::read(0)));
        assert_eq!(lru.name(), "LRU");
    }

    #[test]
    fn ranks_stay_a_permutation_under_random_touches() {
        for ways in [3, 8, 11, 16] {
            let mut lru = Lru::new(2, ways);
            let info = AccessInfo::read(0);
            let mut x = 9u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let set = ((x >> 20) & 1) as usize;
                let way = ((x >> 33) % ways as u64) as usize;
                lru.on_hit(set, way, &info);
                assert_eq!(lru.rank(set, way), 0, "touched way is MRU");
            }
            for set in 0..2 {
                let mut seen: Vec<u8> = (0..ways).map(|w| lru.rank(set, w)).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..ways as u8).collect::<Vec<u8>>(), "{ways} ways");
            }
        }
    }

    #[test]
    fn matches_a_reference_timestamp_lru() {
        // Drive the SWAR implementation and a naive timestamp LRU with the
        // same touch stream; victims must agree at every step.
        let ways = 11usize;
        let mut lru = Lru::new(1, ways);
        let info = AccessInfo::read(0);
        let mut stamps = vec![0u64; ways];
        let mut clock = 0u64;
        for way in 0..ways {
            lru.on_fill(0, way, &info);
            clock += 1;
            stamps[way] = clock;
        }
        let mut x = 77u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let way = ((x >> 33) % ways as u64) as usize;
            lru.on_hit(0, way, &info);
            clock += 1;
            stamps[way] = clock;
            let expected = stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, &stamp)| stamp)
                .map(|(w, _)| w)
                .expect("non-empty");
            assert_eq!(lru.choose_victim(0, &info), expected);
        }
    }

    #[test]
    fn reset_restores_identity_order() {
        let mut lru = Lru::new(1, 4);
        let info = AccessInfo::read(0);
        for way in 0..4 {
            lru.on_fill(0, way, &info);
        }
        lru.reset();
        assert_eq!(lru.choose_victim(0, &info), 3, "identity order after reset");
    }
}
