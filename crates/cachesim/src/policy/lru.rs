//! Least-Recently-Used replacement.

use super::ReplacementPolicy;
use crate::request::AccessInfo;

/// True LRU: every hit or fill stamps the block with a monotonically
/// increasing counter; the victim is the block with the oldest stamp.
///
/// LRU is the reference point of the OPT study (Fig. 11 / Table VII reports
/// "% misses eliminated over LRU") and is also used for the L1 and L2 levels
/// of the hierarchy, as in commodity cores.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates an LRU policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let idx = self.idx(set, way);
        self.stamps[idx] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        (0..self.ways)
            .min_by_key(|&w| self.stamps[self.idx(set, w)])
            .expect("ways is non-zero")
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_is_least_recently_touched() {
        let mut lru = Lru::new(1, 4);
        let info = AccessInfo::read(0);
        for way in 0..4 {
            lru.on_fill(0, way, &info);
        }
        // Touch ways 0, 2, 3 -> way 1 is the victim.
        lru.on_hit(0, 0, &info);
        lru.on_hit(0, 2, &info);
        lru.on_hit(0, 3, &info);
        assert_eq!(lru.choose_victim(0, &info), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        let info = AccessInfo::read(0);
        lru.on_fill(0, 0, &info);
        lru.on_fill(0, 1, &info);
        lru.on_fill(1, 0, &info);
        lru.on_fill(1, 1, &info);
        lru.on_hit(0, 0, &info);
        lru.on_hit(1, 1, &info);
        assert_eq!(lru.choose_victim(0, &info), 1);
        assert_eq!(lru.choose_victim(1, &info), 0);
    }

    #[test]
    fn never_bypasses() {
        let mut lru = Lru::new(1, 2);
        assert!(!lru.should_bypass(0, &AccessInfo::read(0)));
        assert_eq!(lru.name(), "LRU");
    }
}
