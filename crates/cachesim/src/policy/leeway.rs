//! Leeway: dead-block prediction based on Live Distance
//! (Faldu & Grot, PACT'17).
//!
//! Leeway tracks, for every cache block, the *live distance* — how long into
//! its residency (measured in fills observed by its set) the block kept
//! receiving hits. A predictor indexed by the loading PC (here: access site)
//! learns a per-site live distance; a resident block whose age exceeds its
//! site's predicted live distance is considered dead and becomes a preferred
//! victim.
//!
//! The defining property reproduced here is Leeway's *conservative,
//! variability-aware* update policy (the default reuse-oriented policy):
//! predictions grow immediately when a larger live distance is observed but
//! shrink only after several consecutive smaller observations. When block
//! behaviour within a site is irregular — as for graph analytics, where the
//! one gather site touches hot and cold vertices alike — the prediction stays
//! near the largest observed live distance, dead-block predictions become
//! rare, and Leeway degrades gracefully to its base policy (an SRRIP-style
//! scheme). That is exactly the behaviour the paper reports: small gains,
//! small losses, unlike SHiP and Hawkeye.

use super::rrip::{DuelWinner, RrpvArray, SetDueling, BRRIP_LONG_ONE_IN, RRPV_LONG, RRPV_MAX};
use super::{PolicyRng, ReplacementPolicy};
use crate::addr::BlockAddr;
use crate::request::{AccessInfo, AccessSite};

/// How many consecutive smaller observations it takes to shrink a predicted
/// live distance by one step (the "shrink slowly" half of the conservative
/// update).
const SHRINK_VOTES: u8 = 8;

/// Live distances are capped at this value (ages saturate here).
const LIVE_DISTANCE_CAP: u16 = 255;

/// Fixed seed of the dueling tie-breaker RNG (Leeway takes no seed
/// parameter, so resets reuse this constant).
const LEEWAY_SEED: u64 = 0x1EE7;

/// The Leeway replacement policy.
#[derive(Debug, Clone)]
pub struct Leeway {
    rrpv: RrpvArray,
    ways: usize,
    /// Age of each block: number of fills its set has seen since the block
    /// was last filled or hit.
    age: Vec<u16>,
    /// Largest age at which each block received a hit during its residency.
    observed_live: Vec<u16>,
    /// The site that loaded each block.
    loader: Vec<AccessSite>,
    /// Predictor: site → (predicted live distance, shrink votes).
    /// `AccessSite` is 16-bit, so the table is flat — a direct indexed load
    /// per check instead of a hash lookup.
    predictor: Vec<(u16, u8)>,
    /// Only a subset of sets trains the predictor, as in the original
    /// design (precomputed so the per-eviction check is an indexed load).
    sampled: Vec<bool>,
    /// Leeway's reuse-aware adaptive policies are modelled with the same
    /// set-dueling insertion as DRRIP, which keeps the scheme anchored to the
    /// paper's RRIP baseline.
    dueling: SetDueling,
    rng: PolicyRng,
}

impl Leeway {
    /// Creates a Leeway policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            age: vec![0; sets * ways],
            observed_live: vec![0; sets * ways],
            loader: vec![0; sets * ways],
            predictor: vec![(LIVE_DISTANCE_CAP, 0); usize::from(u16::MAX) + 1],
            sampled: {
                let sample_interval = (sets / 64).max(1);
                (0..sets).map(|set| set % sample_interval == 0).collect()
            },
            dueling: SetDueling::new(sets),
            rng: PolicyRng::new(LEEWAY_SEED),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn is_sampled(&self, set: usize) -> bool {
        self.sampled[set]
    }

    /// Predicted live distance for a site. Unseen sites default to the cap so
    /// nothing is predicted dead before any evidence exists.
    #[inline]
    pub fn predicted_live_distance(&self, site: AccessSite) -> u16 {
        self.predictor[usize::from(site)].0
    }

    /// Conservative predictor update on eviction: grow immediately, shrink
    /// only after [`SHRINK_VOTES`] consecutive smaller observations.
    fn train(&mut self, site: AccessSite, observed: u16) {
        let entry = &mut self.predictor[usize::from(site)];
        if observed >= entry.0 {
            entry.0 = observed;
            entry.1 = 0;
        } else {
            entry.1 += 1;
            if entry.1 >= SHRINK_VOTES {
                // Shrink towards the observation rather than by a fixed step
                // so wildly stale predictions converge, but slowly.
                entry.0 = entry.0 - ((entry.0 - observed) / 4).max(1);
                entry.1 = 0;
            }
        }
    }

    /// Returns `true` when the block at (`set`, `way`) is predicted dead
    /// (the victim search inlines this check with a memoized predictor
    /// lookup; kept for tests and diagnostics).
    #[cfg(test)]
    fn is_expired(&self, set: usize, way: usize) -> bool {
        let idx = self.idx(set, way);
        self.age[idx] > self.predicted_live_distance(self.loader[idx])
    }

    /// Ages every other block of the set by one fill event.
    fn bump_ages(&mut self, set: usize, except_way: usize) {
        for way in 0..self.ways {
            if way != except_way {
                let idx = self.idx(set, way);
                self.age[idx] = (self.age[idx] + 1).min(LIVE_DISTANCE_CAP);
            }
        }
    }
}

impl ReplacementPolicy for Leeway {
    fn name(&self) -> &'static str {
        "Leeway"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Dead-block predictions only steer the choice among blocks the base
        // policy already considers near-eviction (RRPV >= long): this is the
        // reproduction of Leeway's variability-aware rate control, which keeps
        // the scheme anchored to its base policy when predictions are shaky.
        //
        // Graph kernels load most of a set's blocks from one or two sites, so
        // the predicted live distance of the previous way's loader is
        // memoized instead of looked up per way.
        let mut expired: Option<(u16, usize)> = None;
        let mut memo: Option<(AccessSite, u16)> = None;
        for way in 0..self.ways {
            if self.rrpv.get(set, way) < RRPV_LONG {
                continue;
            }
            let idx = self.idx(set, way);
            let loader = self.loader[idx];
            let distance = match memo {
                Some((site, distance)) if site == loader => distance,
                _ => {
                    let distance = self.predicted_live_distance(loader);
                    memo = Some((loader, distance));
                    distance
                }
            };
            if self.age[idx] > distance {
                let age = self.age[idx];
                if expired.is_none_or(|(a, _)| age > a) {
                    expired = Some((age, way));
                }
            }
        }
        if let Some((_, way)) = expired {
            return way;
        }
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let idx = self.idx(set, way);
        self.loader[idx] = info.site;
        self.age[idx] = 0;
        self.observed_live[idx] = 0;
        self.dueling.record_miss(set);
        let value = match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        };
        self.rrpv.set(set, way, value);
        self.bump_ages(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let idx = self.idx(set, way);
        if self.age[idx] > self.observed_live[idx] {
            self.observed_live[idx] = self.age[idx];
        }
        self.age[idx] = 0;
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, _had_reuse: bool) {
        if self.is_sampled(set) {
            let idx = self.idx(set, way);
            let observed = self.observed_live[idx];
            let loader = self.loader[idx];
            self.train(loader, observed);
        }
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.age.fill(0);
        self.observed_live.fill(0);
        self.loader.fill(0);
        self.predictor.fill((LIVE_DISTANCE_CAP, 0));
        self.dueling.reset();
        self.rng = PolicyRng::new(LEEWAY_SEED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(addr: u64, site: AccessSite) -> AccessInfo {
        AccessInfo::read(addr).with_site(site)
    }

    #[test]
    fn unseen_sites_are_never_predicted_dead() {
        let mut l = Leeway::new(1, 4);
        for way in 0..4 {
            l.on_fill(0, way, &req(way as u64 * 64, 9));
        }
        for way in 0..4 {
            assert!(!l.is_expired(0, way));
        }
        // With nothing expired, the victim follows the RRIP substrate (all
        // blocks at RRPV_LONG; ageing makes way 0 the victim).
        assert_eq!(l.choose_victim(0, &req(0x400, 9)), 0);
        assert_eq!(l.predicted_live_distance(9), LIVE_DISTANCE_CAP);
    }

    #[test]
    fn ages_track_set_fill_events() {
        let mut l = Leeway::new(1, 4);
        l.on_fill(0, 0, &req(0, 1));
        l.on_fill(0, 1, &req(64, 1));
        l.on_fill(0, 2, &req(128, 1));
        // Way 0 has seen two subsequent fills.
        assert_eq!(l.age[l.idx(0, 0)], 2);
        assert_eq!(l.age[l.idx(0, 2)], 0);
        // A hit resets the age and records the live distance.
        l.on_hit(0, 0, &req(0, 1));
        assert_eq!(l.age[l.idx(0, 0)], 0);
        assert_eq!(l.observed_live[l.idx(0, 0)], 2);
    }

    #[test]
    fn training_grows_fast_and_shrinks_slowly() {
        let mut l = Leeway::new(1, 8);
        // Take the prediction down from the cap with repeated small
        // observations, then grow it back instantly with one large one.
        for _ in 0..200 {
            l.train(5, 0);
        }
        let lowered = l.predicted_live_distance(5);
        assert!(lowered < LIVE_DISTANCE_CAP);
        l.train(5, 40);
        assert_eq!(l.predicted_live_distance(5), 40);
        // A single small observation does not shrink it.
        l.train(5, 0);
        assert_eq!(l.predicted_live_distance(5), 40);
    }

    #[test]
    fn expired_blocks_are_preferred_victims() {
        let mut l = Leeway::new(1, 4);
        l.predictor.insert(1, (1, 0)); // site 1: dead after one fill event
        l.predictor.insert(2, (LIVE_DISTANCE_CAP, 0));
        l.on_fill(0, 0, &req(0x00, 1));
        l.on_fill(0, 1, &req(0x40, 2));
        l.on_fill(0, 2, &req(0x80, 2));
        l.on_fill(0, 3, &req(0xC0, 2));
        // Way 0 has age 3 > predicted 1 -> expired.
        assert!(l.is_expired(0, 0));
        assert_eq!(l.choose_victim(0, &req(0x100, 2)), 0);
    }

    #[test]
    fn hits_protect_blocks_from_expiry() {
        let mut l = Leeway::new(1, 4);
        l.predictor.insert(1, (2, 0));
        l.on_fill(0, 0, &req(0x00, 1));
        l.on_fill(0, 1, &req(0x40, 1));
        l.on_fill(0, 2, &req(0x80, 1));
        l.on_hit(0, 0, &req(0x00, 1)); // resets age
        l.on_fill(0, 3, &req(0xC0, 1));
        assert!(!l.is_expired(0, 0));
    }

    #[test]
    fn irregular_sites_degrade_to_the_base_policy() {
        // A site whose blocks sometimes see very late reuse keeps a large
        // predicted live distance, so victims come from the RRIP substrate —
        // the conservative behaviour the paper highlights.
        let mut l = Leeway::new(1, 4);
        l.train(7, 200);
        for _ in 0..20 {
            l.train(7, 0);
        }
        assert!(l.predicted_live_distance(7) > 100);
    }

    #[test]
    fn eviction_trains_only_sampled_sets() {
        let mut l = Leeway::new(128, 4);
        // Set 1 is not sampled (sample interval is 2 for 128 sets): even
        // enough evictions to out-vote the conservative update leave the
        // prediction untouched.
        assert!(!l.is_sampled(1));
        for _ in 0..SHRINK_VOTES + 1 {
            l.on_fill(1, 0, &req(0, 3));
            l.on_evict(1, 0, 0, false);
        }
        assert_eq!(l.predicted_live_distance(3), LIVE_DISTANCE_CAP);
        // Set 0 is sampled: the same stream shrinks the prediction.
        for _ in 0..SHRINK_VOTES + 1 {
            l.on_fill(0, 0, &req(0, 3));
            l.on_evict(0, 0, 0, false);
        }
        assert!(l.predicted_live_distance(3) < LIVE_DISTANCE_CAP);
    }
}
