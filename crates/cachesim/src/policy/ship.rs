//! SHiP-MEM: Signature-based Hit Predictor keyed by memory region
//! (Wu et al., MICRO'11; the SHiP-MEM variant evaluated in Sec. IV-C).
//!
//! SHiP associates every fill with a *signature* and learns, per signature,
//! whether blocks brought in under it tend to be re-referenced. The paper
//! evaluates the memory-region variant (16 KiB regions) because PC-based
//! signatures are meaningless for graph analytics: the same instruction
//! accesses hot and cold vertices alike. The predictor table (SHCT) is
//! unbounded, matching the paper's "unlimited entries" methodology that
//! assesses the scheme's maximum potential.

use super::rrip::{RrpvArray, RRPV_LONG, RRPV_MAX};
use super::ReplacementPolicy;
use crate::addr::BlockAddr;
use crate::fast_hash::FxHashMap;
use crate::request::AccessInfo;

/// Size of the memory region that forms a signature (16 KiB as in the
/// original proposal and the paper).
pub const SHIP_REGION_BYTES: u64 = 16 * 1024;

/// Maximum value of the 3-bit SHCT counters.
const SHCT_MAX: u8 = 7;

/// Initial (weakly re-referenced) SHCT counter value.
const SHCT_INIT: u8 = 1;

/// SHiP-MEM replacement policy built on an SRRIP substrate.
#[derive(Debug, Clone)]
pub struct ShipMem {
    rrpv: RrpvArray,
    ways: usize,
    /// Signature Hit Counter Table: region id → 3-bit saturating counter.
    shct: FxHashMap<u64, u8>,
    /// Per-block bookkeeping: the signature that filled the block and whether
    /// it has been re-referenced since the fill.
    fill_signature: Vec<u64>,
    was_reused: Vec<bool>,
    block_bytes: u64,
}

impl ShipMem {
    /// Creates a SHiP-MEM policy for a cache of `sets` × `ways` blocks of
    /// `block_bytes` bytes.
    pub fn new(sets: usize, ways: usize, block_bytes: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            shct: FxHashMap::default(),
            fill_signature: vec![0; sets * ways],
            was_reused: vec![false; sets * ways],
            block_bytes,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Memory-region signature of an access.
    #[inline]
    fn signature(&self, info: &AccessInfo) -> u64 {
        info.addr / SHIP_REGION_BYTES
    }

    /// Counter value for a signature (initialised weakly re-referenced).
    fn counter(&self, signature: u64) -> u8 {
        *self.shct.get(&signature).unwrap_or(&SHCT_INIT)
    }

    /// Number of distinct signatures observed so far (predictor footprint).
    pub fn table_entries(&self) -> usize {
        self.shct.len()
    }

    fn train_positive(&mut self, signature: u64) {
        let entry = self.shct.entry(signature).or_insert(SHCT_INIT);
        *entry = (*entry + 1).min(SHCT_MAX);
    }

    fn train_negative(&mut self, signature: u64) {
        let entry = self.shct.entry(signature).or_insert(SHCT_INIT);
        *entry = entry.saturating_sub(1);
    }

    /// Suppress an unused-parameter warning while documenting why the block
    /// size is kept: signatures could alternatively be derived from block
    /// addresses, and tests assert the configured granularity.
    pub fn region_blocks(&self) -> u64 {
        SHIP_REGION_BYTES / self.block_bytes
    }
}

impl ReplacementPolicy for ShipMem {
    fn name(&self) -> &'static str {
        "SHiP-MEM"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let signature = self.signature(info);
        let idx = self.idx(set, way);
        self.fill_signature[idx] = signature;
        self.was_reused[idx] = false;
        // Predicted dead signatures insert at the distant position, everything
        // else at the SRRIP long position.
        let value = if self.counter(signature) == 0 {
            RRPV_MAX
        } else {
            RRPV_LONG
        };
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let idx = self.idx(set, way);
        if !self.was_reused[idx] {
            self.was_reused[idx] = true;
            let signature = self.fill_signature[idx];
            self.train_positive(signature);
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, had_reuse: bool) {
        let idx = self.idx(set, way);
        if !had_reuse && !self.was_reused[idx] {
            let signature = self.fill_signature[idx];
            self.train_negative(signature);
        }
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.shct.clear();
        self.fill_signature.fill(0);
        self.was_reused.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(addr: u64) -> AccessInfo {
        AccessInfo::read(addr)
    }

    #[test]
    fn region_signature_granularity() {
        let p = ShipMem::new(4, 4, 64);
        assert_eq!(p.region_blocks(), 256);
        assert_eq!(
            p.signature(&req(0)),
            p.signature(&req(SHIP_REGION_BYTES - 1))
        );
        assert_ne!(p.signature(&req(0)), p.signature(&req(SHIP_REGION_BYTES)));
    }

    #[test]
    fn dead_regions_insert_distant_after_negative_training() {
        let mut p = ShipMem::new(4, 4, 64);
        let info = req(0x100);
        // Fresh signature: inserts at the long position.
        p.on_fill(0, 0, &info);
        assert_eq!(p.rrpv.get(0, 0), RRPV_LONG);
        // Evict without reuse until the counter saturates at zero.
        p.on_evict(0, 0, 0, false);
        p.on_fill(0, 0, &info);
        p.on_evict(0, 0, 0, false);
        // Counter has hit zero: the next fill is distant.
        p.on_fill(0, 0, &info);
        assert_eq!(p.rrpv.get(0, 0), RRPV_MAX);
    }

    #[test]
    fn reused_regions_recover_long_insertion() {
        let mut p = ShipMem::new(4, 4, 64);
        let info = req(0x40);
        // Drive the counter to zero.
        for _ in 0..3 {
            p.on_fill(0, 0, &info);
            p.on_evict(0, 0, 0, false);
        }
        p.on_fill(0, 0, &info);
        assert_eq!(p.rrpv.get(0, 0), RRPV_MAX);
        // Hits train the counter back up.
        p.on_hit(0, 0, &info);
        p.on_fill(0, 1, &info);
        assert_eq!(p.rrpv.get(0, 1), RRPV_LONG);
    }

    #[test]
    fn hit_trains_positive_once_per_residency() {
        let mut p = ShipMem::new(4, 4, 64);
        let info = req(0x40);
        p.on_fill(0, 0, &info);
        p.on_hit(0, 0, &info);
        p.on_hit(0, 0, &info);
        // Only one increment: counter is INIT + 1.
        assert_eq!(p.counter(p.signature(&info)), SHCT_INIT + 1);
    }

    #[test]
    fn table_grows_with_distinct_regions() {
        let mut p = ShipMem::new(4, 4, 64);
        for r in 0..10u64 {
            let info = req(r * SHIP_REGION_BYTES);
            p.on_fill(0, 0, &info);
            p.on_hit(0, 0, &info);
        }
        assert_eq!(p.table_entries(), 10);
    }
}
