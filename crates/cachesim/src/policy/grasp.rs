//! GRASP: graph-specialized LLC management (Sec. III of the paper).
//!
//! GRASP augments the insertion and hit-promotion policies of an RRIP-managed
//! LLC using the 2-bit reuse hint produced by the
//! [`crate::hint::RegionClassifier`]:
//!
//! | Reuse hint | Insertion | Hit promotion |
//! |---|---|---|
//! | High-Reuse | `RRPV = 0` (MRU) | `RRPV = 0` |
//! | Moderate-Reuse | `RRPV = 6` (near LRU) | `RRPV -= 1` |
//! | Low-Reuse | `RRPV = 7` (LRU) | `RRPV -= 1` |
//! | Default | DRRIP behaviour (6 or 7) | `RRPV = 0` |
//!
//! The eviction policy is unchanged from the baseline, which is what keeps
//! GRASP flexible: blocks from the High Reuse Region that stop being
//! referenced age out naturally and yield space to other blocks with observed
//! reuse (Sec. III-C).
//!
//! [`GraspMode`] exposes the ablations of Fig. 7 (RRIP+Hints, Insertion-Only,
//! full GRASP).

use super::rrip::{DuelWinner, RrpvArray, SetDueling, BRRIP_LONG_ONE_IN, RRPV_LONG, RRPV_MAX};
use super::{PolicyRng, ReplacementPolicy};
use crate::hint::ReuseHint;
use crate::request::AccessInfo;
use serde::{Deserialize, Serialize};

/// Which subset of GRASP's features is active (the Fig. 7 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraspMode {
    /// `RRIP+Hints`: identical to DRRIP except that the insertion position is
    /// chosen by the hint instead of probabilistically — High-Reuse blocks are
    /// inserted near the LRU position (`RRPV = 6`), everything else at LRU
    /// (`RRPV = 7`). Hits promote to MRU as in RRIP.
    HintsOnly,
    /// GRASP's insertion policy (High → MRU, Moderate → 6, Low → 7) with the
    /// baseline RRIP hit promotion (always to MRU).
    InsertionOnly,
    /// Full GRASP: specialized insertion *and* gradual hit promotion.
    Full,
}

impl GraspMode {
    /// All ablation modes in the order of Fig. 7.
    pub const ALL: [GraspMode; 3] = [
        GraspMode::HintsOnly,
        GraspMode::InsertionOnly,
        GraspMode::Full,
    ];

    /// Display label matching Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            GraspMode::HintsOnly => "RRIP+Hints",
            GraspMode::InsertionOnly => "GRASP (Insertion-Only)",
            GraspMode::Full => "GRASP (Hit-Promotion)",
        }
    }
}

impl std::fmt::Display for GraspMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The GRASP replacement policy (DRRIP base + hint-specialized insertion and
/// hit promotion).
#[derive(Debug, Clone)]
pub struct Grasp {
    rrpv: RrpvArray,
    dueling: SetDueling,
    seed: u64,
    rng: PolicyRng,
    mode: GraspMode,
}

impl Grasp {
    /// Creates the full GRASP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self::with_mode(sets, ways, seed, GraspMode::Full)
    }

    /// Creates a GRASP policy with an explicit ablation mode.
    pub fn with_mode(sets: usize, ways: usize, seed: u64, mode: GraspMode) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            dueling: SetDueling::new(sets),
            seed,
            rng: PolicyRng::new(seed),
            mode,
        }
    }

    /// The active ablation mode.
    pub fn mode(&self) -> GraspMode {
        self.mode
    }

    /// DRRIP's default insertion value (used for Default-hinted requests and
    /// by the `HintsOnly` ablation for non-High requests).
    fn default_insertion(&mut self, set: usize) -> u8 {
        match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        }
    }

    fn insertion_value(&mut self, set: usize, hint: ReuseHint) -> u8 {
        match self.mode {
            GraspMode::HintsOnly => match hint {
                // RRIP+Hints: High-Reuse blocks get the favourable of RRIP's
                // two insertion points, everything else the unfavourable one.
                ReuseHint::High => RRPV_LONG,
                ReuseHint::Moderate | ReuseHint::Low => RRPV_MAX,
                ReuseHint::Default => self.default_insertion(set),
            },
            GraspMode::InsertionOnly | GraspMode::Full => match hint {
                // Table II of the paper.
                ReuseHint::High => 0,
                ReuseHint::Moderate => RRPV_LONG,
                ReuseHint::Low => RRPV_MAX,
                ReuseHint::Default => self.default_insertion(set),
            },
        }
    }
}

impl ReplacementPolicy for Grasp {
    fn name(&self) -> &'static str {
        match self.mode {
            GraspMode::HintsOnly => "RRIP+Hints",
            GraspMode::InsertionOnly => "GRASP-Insertion",
            GraspMode::Full => "GRASP",
        }
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Eviction is unchanged from the base scheme (Sec. III-C): no hint is
        // consulted, so no per-block hint metadata is needed.
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.dueling.record_miss(set);
        let value = self.insertion_value(set, info.hint);
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        match self.mode {
            // RRIP-style promotion straight to MRU.
            GraspMode::HintsOnly | GraspMode::InsertionOnly => self.rrpv.set(set, way, 0),
            GraspMode::Full => match info.hint {
                ReuseHint::High | ReuseHint::Default => self.rrpv.set(set, way, 0),
                // Gradual promotion towards MRU (Table II hit policy).
                ReuseHint::Moderate | ReuseHint::Low => self.rrpv.decrement(set, way),
            },
        }
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        self.dueling.reset();
        self.rng = PolicyRng::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RegionLabel;

    fn req(hint: ReuseHint) -> AccessInfo {
        AccessInfo::read(0)
            .with_hint(hint)
            .with_region(RegionLabel::Property)
    }

    #[test]
    fn full_grasp_insertion_follows_table_ii() {
        let mut g = Grasp::new(8, 4, 1);
        g.on_fill(2, 0, &req(ReuseHint::High));
        assert_eq!(g.rrpv.get(2, 0), 0);
        g.on_fill(2, 1, &req(ReuseHint::Moderate));
        assert_eq!(g.rrpv.get(2, 1), 6);
        g.on_fill(2, 2, &req(ReuseHint::Low));
        assert_eq!(g.rrpv.get(2, 2), 7);
        // Default falls back to DRRIP: either 6 or 7.
        g.on_fill(2, 3, &req(ReuseHint::Default));
        assert!(g.rrpv.get(2, 3) >= 6);
    }

    #[test]
    fn full_grasp_hit_promotion_is_gradual_for_cold_hints() {
        let mut g = Grasp::new(4, 4, 1);
        g.on_fill(0, 0, &req(ReuseHint::Low));
        assert_eq!(g.rrpv.get(0, 0), 7);
        g.on_hit(0, 0, &req(ReuseHint::Low));
        assert_eq!(g.rrpv.get(0, 0), 6, "gradual promotion decrements by one");
        g.on_hit(0, 0, &req(ReuseHint::Moderate));
        assert_eq!(g.rrpv.get(0, 0), 5);
        // High-hinted hits jump straight to MRU.
        g.on_hit(0, 0, &req(ReuseHint::High));
        assert_eq!(g.rrpv.get(0, 0), 0);
    }

    #[test]
    fn insertion_only_promotes_to_mru_on_hit() {
        let mut g = Grasp::with_mode(4, 4, 1, GraspMode::InsertionOnly);
        g.on_fill(0, 0, &req(ReuseHint::Low));
        g.on_hit(0, 0, &req(ReuseHint::Low));
        assert_eq!(g.rrpv.get(0, 0), 0);
        // Insertion still follows Table II.
        g.on_fill(0, 1, &req(ReuseHint::High));
        assert_eq!(g.rrpv.get(0, 1), 0);
    }

    #[test]
    fn hints_only_uses_rrip_insertion_points() {
        let mut g = Grasp::with_mode(4, 4, 1, GraspMode::HintsOnly);
        g.on_fill(0, 0, &req(ReuseHint::High));
        assert_eq!(
            g.rrpv.get(0, 0),
            RRPV_LONG,
            "High inserts near LRU, not at MRU"
        );
        g.on_fill(0, 1, &req(ReuseHint::Low));
        assert_eq!(g.rrpv.get(0, 1), RRPV_MAX);
        g.on_fill(0, 2, &req(ReuseHint::Moderate));
        assert_eq!(g.rrpv.get(0, 2), RRPV_MAX);
    }

    #[test]
    fn eviction_ignores_hints() {
        // A High-hinted block that has aged to RRPV_MAX is just as evictable
        // as any other block — that is GRASP's flexibility.
        let mut g = Grasp::new(1, 2, 1);
        g.on_fill(0, 0, &req(ReuseHint::High));
        g.on_fill(0, 1, &req(ReuseHint::Low));
        // Way 1 (Low, RRPV 7) is the victim right now.
        assert_eq!(g.choose_victim(0, &req(ReuseHint::Default)), 1);
        // find_victim ages way 0 while searching; once it saturates the High
        // block is evictable like any other.
        g.rrpv.set(0, 0, RRPV_MAX);
        g.rrpv.set(0, 1, 0);
        assert_eq!(g.choose_victim(0, &req(ReuseHint::Default)), 0);
    }

    #[test]
    fn mode_labels_match_fig7() {
        assert_eq!(GraspMode::HintsOnly.to_string(), "RRIP+Hints");
        assert_eq!(
            GraspMode::InsertionOnly.to_string(),
            "GRASP (Insertion-Only)"
        );
        assert_eq!(GraspMode::Full.to_string(), "GRASP (Hit-Promotion)");
        assert_eq!(GraspMode::ALL.len(), 3);
    }

    #[test]
    fn default_hint_behaves_like_drrip() {
        let mut g = Grasp::new(64, 4, 1);
        // In an SRRIP leader set, Default inserts at RRPV_LONG.
        g.on_fill(0, 0, &req(ReuseHint::Default));
        assert_eq!(g.rrpv.get(0, 0), RRPV_LONG);
        // Default hits promote to MRU.
        g.on_hit(0, 0, &req(ReuseHint::Default));
        assert_eq!(g.rrpv.get(0, 0), 0);
    }
}
