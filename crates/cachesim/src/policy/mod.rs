//! Replacement policies.
//!
//! Every policy evaluated in the paper is implemented behind the
//! [`ReplacementPolicy`] trait:
//!
//! | Module | Scheme | Paper role |
//! |---|---|---|
//! | [`lru`] | Least Recently Used | the classical baseline for Fig. 11 / Table VII |
//! | [`random`] | Random | sanity baseline |
//! | [`rrip`] | SRRIP / BRRIP / DRRIP | the paper's high-performance baseline (Sec. IV-C) |
//! | [`ship`] | SHiP-MEM | history-based insertion keyed by memory region |
//! | [`hawkeye`] | Hawkeye | OPTgen-trained, PC(site)-indexed predictor |
//! | [`leeway`] | Leeway | live-distance dead-block prediction |
//! | [`pin`] | PIN-X (XMem-style) | rigid pinning of the High Reuse Region |
//! | [`grasp`] | GRASP | the paper's contribution, plus its ablations |
//! | [`opt`] | Belady's OPT | offline upper bound (Sec. V-D) |

pub mod dispatch;
pub mod grasp;
pub mod hawkeye;
pub mod leeway;
pub mod lru;
pub mod opt;
pub mod pin;
pub mod random;
pub mod rrip;
pub mod ship;

use crate::addr::BlockAddr;
use crate::request::AccessInfo;

pub use dispatch::PolicyDispatch;

/// A cache replacement policy driving one set-associative cache.
///
/// The cache owns tags and valid bits; the policy owns whatever per-block or
/// global metadata it needs (RRPV counters, predictor tables, ...). The cache
/// fills invalid ways without consulting the policy, so
/// [`ReplacementPolicy::choose_victim`] is only invoked when every way of the
/// set holds a valid block.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Human-readable policy name used in reports.
    fn name(&self) -> &'static str;

    /// Returns `true` if the fill for `info` should be skipped entirely
    /// (bypass). Bypassed requests are forwarded to memory without allocating
    /// a block.
    fn should_bypass(&mut self, _set: usize, _info: &AccessInfo) -> bool {
        false
    }

    /// Chooses the victim way for a fill in `set` when all ways are valid.
    fn choose_victim(&mut self, set: usize, info: &AccessInfo) -> usize;

    /// Notification that `way` in `set` was filled with the block of `info`.
    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// Notification that the access `info` hit `way` in `set`.
    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo);

    /// Notification that the block `block` was evicted from `way` in `set`.
    /// `had_reuse` tells whether the block received at least one hit while
    /// resident (used by history-based predictors for negative training).
    fn on_evict(&mut self, _set: usize, _way: usize, _block: BlockAddr, _had_reuse: bool) {}

    /// Restores the policy to its just-constructed state.
    ///
    /// Called when the owning cache is flushed between experiment phases so
    /// no replacement metadata (RRPV counters, predictor tables, pin bits)
    /// survives across a flush. The default is a no-op for stateless
    /// policies and external implementations.
    fn reset(&mut self) {}
}

/// A tiny deterministic pseudo-random generator used by probabilistic
/// policies (BRRIP's infrequent near-insertion, random replacement). Kept
/// local to the crate so the simulator has no dependency on the graph
/// substrate and produces bit-identical results across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PolicyRng {
    state: u64,
}

impl PolicyRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// xorshift64* step.
    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Returns `true` once every `denominator` calls on average.
    #[inline]
    pub(crate) fn one_in(&mut self, denominator: u64) -> bool {
        self.next_below(denominator) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_rng_is_deterministic() {
        let mut a = PolicyRng::new(1);
        let mut b = PolicyRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn policy_rng_bounds() {
        let mut rng = PolicyRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn one_in_rate_is_roughly_right() {
        let mut rng = PolicyRng::new(5);
        let trials = 64_000;
        let hits = (0..trials).filter(|_| rng.one_in(32)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 1.0 / 32.0).abs() < 0.01, "rate {rate}");
    }
}
