//! Belady's optimal replacement (OPT / MIN), applied offline to a recorded
//! LLC access trace (Sec. V-D of the paper).
//!
//! OPT requires perfect knowledge of the future: on every miss in a full set
//! it evicts the resident block whose next use is farthest away (or never).
//! It is therefore not a [`super::ReplacementPolicy`] — it is a trace
//! post-processor. The paper records up to two billion LLC accesses per
//! workload and reports the fraction of misses OPT eliminates relative to
//! LRU for several LLC sizes (Fig. 11, Table VII); the reproduction follows
//! the same methodology on its recorded traces.

use crate::addr::block_of;
use crate::config::CacheConfig;
use crate::request::AccessInfo;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of an offline OPT simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptResult {
    /// Number of accesses in the trace.
    pub accesses: u64,
    /// Hits under OPT.
    pub hits: u64,
    /// Misses under OPT (compulsory + capacity/conflict that even OPT cannot
    /// avoid).
    pub misses: u64,
}

impl OptResult {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Simulates Belady's OPT over `trace` for a set-associative cache described
/// by `config` and returns the minimal achievable miss count.
///
/// The simulation is exact per set: the next-use of every access is
/// pre-computed with a backward pass, and on every replacement the resident
/// block with the farthest next use is evicted.
pub fn optimal_misses(trace: &[AccessInfo], config: &CacheConfig) -> OptResult {
    let sets = config.sets();
    // Pre-compute, for each access, the index of the next access to the same
    // block (or u64::MAX when there is none).
    let mut next_use = vec![u64::MAX; trace.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, info) in trace.iter().enumerate().rev() {
        let block = block_of(info.addr, config.block_bytes);
        if let Some(&later) = last_seen.get(&block) {
            next_use[i] = later as u64;
        }
        last_seen.insert(block, i);
    }

    // Per-set resident blocks: block -> next use (as of its latest access).
    let mut resident: Vec<HashMap<u64, u64>> = vec![HashMap::new(); sets];
    let mut hits = 0u64;
    let mut misses = 0u64;

    for (i, info) in trace.iter().enumerate() {
        let block = block_of(info.addr, config.block_bytes);
        let set = config.set_of(block);
        let set_map = &mut resident[set];
        if let std::collections::hash_map::Entry::Occupied(mut entry) = set_map.entry(block) {
            hits += 1;
            *entry.get_mut() = next_use[i];
            continue;
        }
        misses += 1;
        if set_map.len() >= config.ways {
            // Evict the resident block with the farthest next use. Ties are
            // broken by block address for determinism.
            let (&victim, _) = set_map
                .iter()
                .max_by_key(|&(&b, &next)| (next, b))
                .expect("set is non-empty when full");
            set_map.remove(&victim);
        }
        set_map.insert(block, next_use[i]);
    }

    OptResult {
        accesses: trace.len() as u64,
        hits,
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(addrs: &[u64]) -> Vec<AccessInfo> {
        addrs.iter().map(|&a| AccessInfo::read(a * 64)).collect()
    }

    fn tiny_cache(ways: usize) -> CacheConfig {
        // One set with `ways` ways.
        CacheConfig::new(64 * ways as u64, ways, 64)
    }

    #[test]
    fn opt_on_the_classic_belady_example() {
        // Reference stream with a 3-entry fully-associative cache.
        let trace = trace_of(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let result = optimal_misses(&trace, &tiny_cache(3));
        // Belady's MIN incurs 7 misses on this classical example.
        assert_eq!(result.misses, 7);
        assert_eq!(result.hits, 5);
        assert_eq!(result.accesses, 12);
    }

    #[test]
    fn opt_never_exceeds_lru_misses() {
        use crate::cache::SetAssocCache;
        use crate::policy::lru::Lru;
        // A pseudo-random but deterministic trace.
        let mut addrs = Vec::new();
        let mut x = 123u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            addrs.push((x >> 33) % 256);
        }
        let trace = trace_of(&addrs);
        let config = CacheConfig::new(64 * 64, 8, 64);
        let opt = optimal_misses(&trace, &config);
        let mut lru = SetAssocCache::new(
            "LLC",
            config,
            Box::new(Lru::new(config.sets(), config.ways)),
        );
        for info in &trace {
            lru.access(info);
        }
        assert!(opt.misses <= lru.stats().misses);
        // Compulsory misses are unavoidable even for OPT.
        let distinct: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        assert!(opt.misses >= distinct.len() as u64);
    }

    #[test]
    fn opt_with_ample_capacity_only_takes_compulsory_misses() {
        let trace = trace_of(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let result = optimal_misses(&trace, &tiny_cache(4));
        assert_eq!(result.misses, 3);
        assert_eq!(result.hits, 6);
    }

    #[test]
    fn empty_trace() {
        let result = optimal_misses(&[], &tiny_cache(2));
        assert_eq!(result.accesses, 0);
        assert_eq!(result.misses, 0);
        assert_eq!(result.miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_is_fractional() {
        let trace = trace_of(&[1, 1, 1, 2]);
        let result = optimal_misses(&trace, &tiny_cache(1));
        assert!((result.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
