//! Belady's optimal replacement (OPT / MIN), applied offline to a recorded
//! LLC access trace (Sec. V-D of the paper).
//!
//! OPT requires perfect knowledge of the future: on every miss in a full set
//! it evicts the resident block whose next use is farthest away (or never).
//! It is therefore not a [`super::ReplacementPolicy`] — it is a trace
//! post-processor. The paper records up to two billion LLC accesses per
//! workload and reports the fraction of misses OPT eliminates relative to
//! LRU for several LLC sizes (Fig. 11, Table VII); the reproduction follows
//! the same methodology on its recorded traces.

use crate::addr::block_of;
use crate::config::CacheConfig;
use crate::request::AccessInfo;
use crate::trace::LlcTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of an offline OPT simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptResult {
    /// Number of accesses in the trace.
    pub accesses: u64,
    /// Hits under OPT.
    pub hits: u64,
    /// Misses under OPT (compulsory + capacity/conflict that even OPT cannot
    /// avoid).
    pub misses: u64,
}

impl OptResult {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The backward pass: for each access (given in **reverse** stream order),
/// the index of the next access to the same block (`u64::MAX` when there is
/// none). `len` must equal the number of items `rev_blocks` yields.
fn next_use_table(len: usize, rev_blocks: impl Iterator<Item = u64>) -> Vec<u64> {
    let mut next_use = vec![u64::MAX; len];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    let mut i = len;
    for block in rev_blocks {
        i -= 1;
        if let Some(&later) = last_seen.get(&block) {
            next_use[i] = later as u64;
        }
        last_seen.insert(block, i);
    }
    debug_assert_eq!(i, 0, "rev_blocks must yield exactly len items");
    next_use
}

/// The forward pass over block addresses with a pre-computed next-use table.
fn optimal_misses_blocks(
    fwd_blocks: impl Iterator<Item = u64>,
    next_use: &[u64],
    config: &CacheConfig,
) -> OptResult {
    // Per-set resident blocks: block -> next use (as of its latest access).
    let mut resident: Vec<HashMap<u64, u64>> = vec![HashMap::new(); config.sets()];
    let mut hits = 0u64;
    let mut misses = 0u64;

    for (i, block) in fwd_blocks.enumerate() {
        let set = config.set_of(block);
        let set_map = &mut resident[set];
        if let std::collections::hash_map::Entry::Occupied(mut entry) = set_map.entry(block) {
            hits += 1;
            *entry.get_mut() = next_use[i];
            continue;
        }
        misses += 1;
        if set_map.len() >= config.ways {
            // Evict the resident block with the farthest next use. Ties are
            // broken by block address for determinism.
            let (&victim, _) = set_map
                .iter()
                .max_by_key(|&(&b, &next)| (next, b))
                .expect("set is non-empty when full");
            set_map.remove(&victim);
        }
        set_map.insert(block, next_use[i]);
    }

    OptResult {
        accesses: next_use.len() as u64,
        hits,
        misses,
    }
}

/// Simulates Belady's OPT over `trace` for a set-associative cache described
/// by `config` and returns the minimal achievable miss count.
///
/// The simulation is exact per set: the next-use of every access is
/// pre-computed with a backward pass, and on every replacement the resident
/// block with the farthest next use is evicted.
pub fn optimal_misses(trace: &[AccessInfo], config: &CacheConfig) -> OptResult {
    let next_use = next_use_table(
        trace.len(),
        trace
            .iter()
            .rev()
            .map(|info| block_of(info.addr, config.block_bytes)),
    );
    optimal_misses_blocks(
        trace
            .iter()
            .map(|info| block_of(info.addr, config.block_bytes)),
        &next_use,
        config,
    )
}

/// [`optimal_misses`] over the **demand** stream of a recorded trace,
/// consumed chunk-natively: both the backward next-use pass and the forward
/// replacement pass stream straight off the trace's 12-byte-per-record
/// chunked storage, so no `Vec<AccessInfo>` is ever materialized. Only the
/// 8-byte-per-demand next-use table is allocated — what keeps the Fig. 11 /
/// Table VII sweep out of 16-byte-per-access memory at paper scale.
pub fn optimal_misses_trace(trace: &LlcTrace, config: &CacheConfig) -> OptResult {
    let next_use = next_use_table(
        trace.demand_len(),
        trace
            .demand_accesses_rev()
            .map(|info| block_of(info.addr, config.block_bytes)),
    );
    optimal_misses_blocks(
        trace
            .demand_accesses()
            .map(|info| block_of(info.addr, config.block_bytes)),
        &next_use,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(addrs: &[u64]) -> Vec<AccessInfo> {
        addrs.iter().map(|&a| AccessInfo::read(a * 64)).collect()
    }

    fn tiny_cache(ways: usize) -> CacheConfig {
        // One set with `ways` ways.
        CacheConfig::new(64 * ways as u64, ways, 64)
    }

    #[test]
    fn opt_on_the_classic_belady_example() {
        // Reference stream with a 3-entry fully-associative cache.
        let trace = trace_of(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let result = optimal_misses(&trace, &tiny_cache(3));
        // Belady's MIN incurs 7 misses on this classical example.
        assert_eq!(result.misses, 7);
        assert_eq!(result.hits, 5);
        assert_eq!(result.accesses, 12);
    }

    #[test]
    fn opt_never_exceeds_lru_misses() {
        use crate::cache::SetAssocCache;
        use crate::policy::lru::Lru;
        // A pseudo-random but deterministic trace.
        let mut addrs = Vec::new();
        let mut x = 123u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            addrs.push((x >> 33) % 256);
        }
        let trace = trace_of(&addrs);
        let config = CacheConfig::new(64 * 64, 8, 64);
        let opt = optimal_misses(&trace, &config);
        let mut lru = SetAssocCache::new(
            "LLC",
            config,
            Box::new(Lru::new(config.sets(), config.ways)),
        );
        for info in &trace {
            lru.access(info);
        }
        assert!(opt.misses <= lru.stats().misses);
        // Compulsory misses are unavoidable even for OPT.
        let distinct: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        assert!(opt.misses >= distinct.len() as u64);
    }

    #[test]
    fn opt_with_ample_capacity_only_takes_compulsory_misses() {
        let trace = trace_of(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let result = optimal_misses(&trace, &tiny_cache(4));
        assert_eq!(result.misses, 3);
        assert_eq!(result.hits, 6);
    }

    #[test]
    fn empty_trace() {
        let result = optimal_misses(&[], &tiny_cache(2));
        assert_eq!(result.accesses, 0);
        assert_eq!(result.misses, 0);
        assert_eq!(result.miss_ratio(), 0.0);
        let chunked = optimal_misses_trace(&LlcTrace::new(), &tiny_cache(2));
        assert_eq!(chunked, result);
    }

    #[test]
    fn chunk_native_opt_matches_the_slice_version() {
        // A pseudo-random demand stream, interleaved with prefetch and
        // writeback events the demand-only OPT view must skip.
        let mut slice = Vec::new();
        let mut chunked = LlcTrace::new();
        let mut x = 99u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let info = AccessInfo::read(((x >> 33) % 2048) * 64);
            slice.push(info);
            chunked.push(&info);
            if i % 7 == 0 {
                chunked.push_prefetch(&AccessInfo::read(((x >> 20) % 4096) * 64));
            }
            if i % 11 == 0 {
                chunked.push_writeback(((x >> 40) % 1024) * 64);
            }
        }
        for config in [tiny_cache(4), CacheConfig::new(64 * 64, 8, 64)] {
            assert_eq!(
                optimal_misses_trace(&chunked, &config),
                optimal_misses(&slice, &config),
            );
        }
    }

    #[test]
    fn miss_ratio_is_fractional() {
        let trace = trace_of(&[1, 1, 1, 2]);
        let result = optimal_misses(&trace, &tiny_cache(1));
        assert!((result.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
