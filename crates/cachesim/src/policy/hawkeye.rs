//! Hawkeye cache replacement (Jain & Lin, ISCA'16).
//!
//! Hawkeye reconstructs what Belady's OPT *would have done* on past accesses
//! to a few sampled sets (the OPTgen structure) and uses those decisions to
//! train a predictor indexed by the PC of the load. Blocks loaded by a
//! "cache-friendly" PC are inserted at MRU and protected; blocks loaded by a
//! "cache-averse" PC are inserted at LRU and evicted first.
//!
//! In this reproduction the PC signature is the access-*site* identifier
//! (see [`crate::request::AccessSite`]). For graph analytics this faithfully
//! reproduces the failure mode the paper describes (Sec. V-A): the one site
//! that accesses the Property Array touches hot and cold vertices alike, so
//! OPTgen trains its counter towards "averse", and Hawkeye then treats *all*
//! property accesses — including the hot ones — as cache-averse, performing
//! worse than the RRIP baseline.

use super::rrip::{RrpvArray, RRPV_MAX};
use super::ReplacementPolicy;
use crate::addr::BlockAddr;
use crate::request::{AccessInfo, AccessSite};
use std::collections::VecDeque;

/// Number of 3-bit counter states; counters ≥ `FRIENDLY_THRESHOLD` predict
/// cache-friendly behaviour.
const COUNTER_MAX: u8 = 7;
const FRIENDLY_THRESHOLD: u8 = 4;

/// OPTgen for a single sampled set: a sliding window of past accesses with an
/// occupancy vector that answers "would OPT have hit this access?".
///
/// Finding a block's previous use — once the dominant cost of sampled
/// accesses — is gated by a counting presence filter: a zero count for the
/// block's fingerprint proves the block is not in the window, so the exact
/// backward search (which is fast when it succeeds: reused blocks recur
/// within a few entries) only runs for present-or-colliding blocks. Cold
/// single-use blocks — the bulk of a graph workload's stream — pay one byte
/// load instead of a full-window scan.
#[derive(Debug, Clone, Default)]
struct OptGen {
    blocks: VecDeque<BlockAddr>,
    /// Per-entry: the site that performed the access.
    sites: VecDeque<AccessSite>,
    /// Per-entry: number of liveness intervals overlapping this position.
    /// Kept as its own byte deque so the interval check (`max < ways`) and
    /// the interval bump (`+= 1`) run over dense byte slices the compiler
    /// vectorizes, instead of striding over wide mixed entries.
    occupancy: VecDeque<u8>,
    /// Per-entry: whether a later access to the same block was observed while
    /// the entry was inside the window (it started a usage interval).
    reused: VecDeque<bool>,
    /// Counting presence filter over the window, indexed by the block
    /// fingerprint (256 counters; `u16` so even a maximum-associativity
    /// window of `64 * 8` entries hashing to one fingerprint cannot
    /// overflow).
    filter: Vec<u16>,
    capacity: usize,
    ways: u8,
}

/// 8-bit block fingerprint for the presence filter. The low 6+ bits of a
/// block address encode the set index (constant within one OPTgen instance),
/// so the fingerprint folds the higher bits.
#[inline]
fn fingerprint(block: BlockAddr) -> usize {
    (((block >> 6) ^ (block >> 14) ^ (block >> 22)) & 0xFF) as usize
}

impl OptGen {
    fn new(ways: usize) -> Self {
        Self {
            blocks: VecDeque::new(),
            sites: VecDeque::new(),
            occupancy: VecDeque::new(),
            reused: VecDeque::new(),
            filter: vec![0; 256],
            // The ISCA'16 design tracks 8x the associativity of usage
            // intervals per sampled set.
            capacity: ways * 8,
            ways: ways as u8,
        }
    }

    /// Returns `true` when no position in `[from..]` is already at full
    /// occupancy (OPT would have room for the whole usage interval). A
    /// max-reduce over the byte slices: branch-free, so it vectorizes.
    #[inline]
    fn interval_fits(&self, from: usize) -> bool {
        let (a, b) = self.occupancy.as_slices();
        let max = if from < a.len() {
            let ma = a[from..].iter().copied().fold(0, u8::max);
            let mb = b.iter().copied().fold(0, u8::max);
            ma.max(mb)
        } else {
            b[from - a.len()..].iter().copied().fold(0, u8::max)
        };
        max < self.ways
    }

    /// Adds one liveness interval over `[from..]`.
    #[inline]
    fn occupy_interval(&mut self, from: usize) {
        let split = {
            let (a, _) = self.occupancy.as_slices();
            a.len()
        };
        let (a, b) = self.occupancy.as_mut_slices();
        if from < split {
            for slot in &mut a[from..] {
                *slot += 1;
            }
            for slot in b {
                *slot += 1;
            }
        } else {
            for slot in &mut b[from - split..] {
                *slot += 1;
            }
        }
    }

    /// Logical index of the most recent history entry for `block` (`None`
    /// proven cheaply by the presence filter for most cold blocks).
    #[inline]
    fn rposition_block(&self, block: BlockAddr) -> Option<usize> {
        if self.filter[fingerprint(block)] == 0 {
            return None;
        }
        let (front, back) = self.blocks.as_slices();
        if let Some(pos) = back.iter().rposition(|&b| b == block) {
            return Some(front.len() + pos);
        }
        front.iter().rposition(|&b| b == block)
    }

    /// Drops every window entry (used on a hierarchy flush).
    fn clear(&mut self) {
        self.blocks.clear();
        self.sites.clear();
        self.occupancy.clear();
        self.reused.clear();
        self.filter.fill(0);
    }

    /// Records an access to `block` by `site`. Returns up to two training
    /// events `(site, opt_friendly)`:
    ///
    /// * when the block has a previous access inside the window, the previous
    ///   site is trained with OPTgen's verdict (would OPT have hit?);
    /// * when the window overflows and the evicted entry never saw a reuse,
    ///   its site is trained negatively (the reuse interval, if any, exceeds
    ///   what OPT could exploit with this cache size).
    ///
    /// The events come back in a fixed-size buffer: `record` runs on every
    /// sampled fill and hit, so it must not allocate.
    fn record(&mut self, block: BlockAddr, site: AccessSite) -> TrainingEvents {
        let mut events = TrainingEvents::default();
        if let Some(prev_pos) = self.rposition_block(block) {
            let prev_site = self.sites[prev_pos];
            let interval_fits = self.interval_fits(prev_pos);
            if interval_fits {
                self.occupy_interval(prev_pos);
            }
            self.reused[prev_pos] = true;
            events.push(prev_site, interval_fits);
        }
        self.filter[fingerprint(block)] += 1;
        self.blocks.push_back(block);
        self.sites.push_back(site);
        self.occupancy.push_back(0);
        self.reused.push_back(false);
        if self.blocks.len() > self.capacity {
            if let Some(evicted_block) = self.blocks.pop_front() {
                self.filter[fingerprint(evicted_block)] -= 1;
            }
            let evicted_site = self.sites.pop_front();
            self.occupancy.pop_front();
            if let (Some(evicted_site), Some(false)) = (evicted_site, self.reused.pop_front()) {
                events.push(evicted_site, false);
            }
        }
        events
    }
}

/// Up to two `(site, opt_friendly)` training events, inline (no allocation).
#[derive(Debug, Clone, Copy, Default)]
struct TrainingEvents {
    events: [(AccessSite, bool); 2],
    len: u8,
}

impl TrainingEvents {
    fn push(&mut self, site: AccessSite, friendly: bool) {
        self.events[self.len as usize] = (site, friendly);
        self.len += 1;
    }

    fn iter(self) -> impl Iterator<Item = (AccessSite, bool)> {
        self.events.into_iter().take(self.len as usize)
    }

    #[cfg(test)]
    fn is_empty(self) -> bool {
        self.len == 0
    }

    #[cfg(test)]
    fn to_vec(self) -> Vec<(AccessSite, bool)> {
        self.iter().collect()
    }
}

/// The Hawkeye replacement policy.
#[derive(Debug, Clone)]
pub struct Hawkeye {
    rrpv: RrpvArray,
    ways: usize,
    /// Which sets are sampled for OPTgen training (precomputed so the
    /// per-access check is an indexed load, not a division).
    sampled: Vec<bool>,
    /// Per-set OPTgen windows (only sampled sets ever receive entries; the
    /// deques of unsampled sets never allocate).
    optgen: Vec<OptGen>,
    /// Site-indexed 3-bit predictor counters. `AccessSite` is 16-bit, so the
    /// "unlimited entries" methodology of the paper is a flat 64 Ki table —
    /// a direct indexed load instead of a hash lookup per access.
    predictor: Vec<u8>,
    /// Per-block: the site that loaded the block (for detraining on
    /// eviction).
    loader: Vec<AccessSite>,
    /// Per-set bitmask of blocks predicted friendly at fill/hit time, so the
    /// friendly-ageing pass walks only the set bits.
    friendly: Vec<u64>,
}

impl Hawkeye {
    /// Creates a Hawkeye policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        // Sample roughly 64 sets (every `sets/64`-th set), at least every set
        // for tiny caches.
        let sample_interval = (sets / 64).max(1);
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            sampled: (0..sets).map(|set| set % sample_interval == 0).collect(),
            optgen: (0..sets).map(|_| OptGen::new(ways)).collect(),
            predictor: vec![FRIENDLY_THRESHOLD; usize::from(u16::MAX) + 1],
            loader: vec![0; sets * ways],
            friendly: vec![0; sets],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn is_sampled(&self, set: usize) -> bool {
        self.sampled[set]
    }

    /// Predicted friendliness of a site.
    #[inline]
    fn predict_friendly(&self, site: AccessSite) -> bool {
        self.predictor[usize::from(site)] >= FRIENDLY_THRESHOLD
    }

    /// Current counter value of a site (used by tests).
    pub fn counter(&self, site: AccessSite) -> u8 {
        self.predictor[usize::from(site)]
    }

    fn train(&mut self, site: AccessSite, friendly: bool) {
        let entry = &mut self.predictor[usize::from(site)];
        if friendly {
            *entry = (*entry + 1).min(COUNTER_MAX);
        } else {
            *entry = entry.saturating_sub(1);
        }
    }

    /// Feeds OPTgen on sampled sets and trains the predictor with its verdict.
    fn observe(&mut self, set: usize, info: &AccessInfo) {
        if !self.is_sampled(set) {
            return;
        }
        let block = info.addr >> 6;
        let events = self.optgen[set].record(block, info.site);
        for (site, friendly) in events.iter() {
            self.train(site, friendly);
        }
    }

    /// Ages every cache-friendly block of a set except `except_way` — called
    /// when a friendly block is inserted, mirroring Hawkeye's RRIP-style
    /// ageing that keeps relative order among friendly blocks.
    fn age_friendly(&mut self, set: usize, except_way: usize) {
        let mut mask = self.friendly[set] & !(1u64 << except_way);
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            let v = self.rrpv.get(set, way);
            if v < RRPV_MAX - 1 {
                self.rrpv.set(set, way, v + 1);
            }
            mask &= mask - 1;
        }
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &'static str {
        "Hawkeye"
    }

    fn choose_victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        // Prefer cache-averse blocks (RRPV == MAX); otherwise evict the oldest
        // friendly block and detrain the site that loaded it.
        if let Some(way) = self.rrpv.first_distant(set) {
            return way;
        }
        let victim = (0..self.ways)
            .max_by_key(|&w| self.rrpv.get(set, w))
            .expect("ways is non-zero");
        let loader = self.loader[self.idx(set, victim)];
        self.train(loader, false);
        let _ = info;
        victim
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.observe(set, info);
        let friendly = self.predict_friendly(info.site);
        let idx = self.idx(set, way);
        self.loader[idx] = info.site;
        let bit = 1u64 << way;
        if friendly {
            self.friendly[set] |= bit;
            self.rrpv.set(set, way, 0);
            self.age_friendly(set, way);
        } else {
            self.friendly[set] &= !bit;
            self.rrpv.set(set, way, RRPV_MAX);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.observe(set, info);
        let friendly = self.predict_friendly(info.site);
        let bit = 1u64 << way;
        if friendly {
            self.friendly[set] |= bit;
            self.rrpv.set(set, way, 0);
        } else {
            self.friendly[set] &= !bit;
            // The paper highlights this behaviour: a hit to a block whose site
            // is predicted cache-averse *demotes* the block instead of
            // promoting it, hurting graph workloads.
            self.rrpv.set(set, way, RRPV_MAX);
        }
    }

    fn reset(&mut self) {
        self.rrpv.reset();
        for optgen in &mut self.optgen {
            optgen.clear();
        }
        self.predictor.fill(FRIENDLY_THRESHOLD);
        self.loader.fill(0);
        self.friendly.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(addr: u64, site: AccessSite) -> AccessInfo {
        AccessInfo::read(addr).with_site(site)
    }

    #[test]
    fn optgen_detects_fitting_intervals() {
        let mut opt = OptGen::new(2);
        assert!(opt.record(1, 10).is_empty());
        assert!(opt.record(2, 11).is_empty());
        // Re-access of block 1: interval [access(1), now) has occupancy 0
        // everywhere, so OPT would hit.
        let events = opt.record(1, 12);
        assert_eq!(events.to_vec(), vec![(10, true)]);
    }

    #[test]
    fn optgen_detects_overflowing_intervals() {
        let mut opt = OptGen::new(1); // a 1-way "cache"
        opt.record(1, 1);
        opt.record(2, 2);
        let events = opt.record(2, 2);
        assert_eq!(
            events.to_vec(),
            vec![(2, true)],
            "back-to-back reuse fits in one way"
        );
        // Now block 1's interval overlaps block 2's occupied slot.
        let events = opt.record(1, 1);
        assert_eq!(
            events.to_vec(),
            vec![(1, false)],
            "interval does not fit: OPT would miss"
        );
    }

    #[test]
    fn optgen_window_overflow_trains_negative() {
        let mut opt = OptGen::new(1); // window capacity 8
        for i in 0..8u64 {
            assert!(opt.record(100 + i, 5).is_empty());
        }
        // The ninth access evicts the oldest never-reused entry.
        let events = opt.record(200, 6);
        assert_eq!(events.to_vec(), vec![(5, false)]);
    }

    #[test]
    fn friendly_sites_insert_at_mru_averse_at_lru() {
        let mut h = Hawkeye::new(64, 4);
        // Manually bias the predictor.
        h.predictor[1] = COUNTER_MAX;
        h.predictor[2] = 0;
        h.on_fill(3, 0, &req(0x40, 1));
        assert_eq!(h.rrpv.get(3, 0), 0);
        h.on_fill(3, 1, &req(0x80, 2));
        assert_eq!(h.rrpv.get(3, 1), RRPV_MAX);
    }

    #[test]
    fn averse_hit_demotes_instead_of_promoting() {
        let mut h = Hawkeye::new(64, 4);
        h.predictor[2] = 0;
        h.on_fill(3, 0, &req(0x40, 2));
        h.on_hit(3, 0, &req(0x40, 2));
        assert_eq!(h.rrpv.get(3, 0), RRPV_MAX);
    }

    #[test]
    fn victim_prefers_averse_blocks() {
        let mut h = Hawkeye::new(64, 2);
        h.predictor[1] = COUNTER_MAX;
        h.predictor[2] = 0;
        h.on_fill(3, 0, &req(0x40, 1)); // friendly
        h.on_fill(3, 1, &req(0x80, 2)); // averse
        assert_eq!(h.choose_victim(3, &req(0xC0, 1)), 1);
    }

    #[test]
    fn evicting_a_friendly_block_detrains_its_loader() {
        let mut h = Hawkeye::new(64, 2);
        h.predictor[1] = COUNTER_MAX;
        h.on_fill(3, 0, &req(0x40, 1));
        h.on_fill(3, 1, &req(0x80, 1));
        let before = h.counter(1);
        let _ = h.choose_victim(3, &req(0xC0, 1));
        assert_eq!(h.counter(1), before - 1);
    }

    #[test]
    fn mixed_reuse_site_trains_towards_averse() {
        // One site touches many blocks, most of which are never reused within
        // the window — exactly the Property Array pattern. The counter should
        // fall below the friendly threshold.
        let mut h = Hawkeye::new(1, 4); // every set sampled
        let site = 7;
        // A stream of single-use blocks with occasional reuse of block 0.
        for i in 0..200u64 {
            let addr = if i % 50 == 0 { 0 } else { (i + 1) * 64 };
            h.observe(0, &req(addr, site));
        }
        assert!(
            h.counter(site) < FRIENDLY_THRESHOLD,
            "counter {} should predict cache-averse",
            h.counter(site)
        );
    }
}
