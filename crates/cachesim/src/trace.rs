//! The canonical post-L2 request stream: recording and replay.
//!
//! [`LlcTrace`] is the exchange format of the record-once / replay-many
//! experiment pipeline. One recording run captures everything the LLC will
//! ever see — demand requests, prefetch requests and dirty-victim writebacks,
//! in program order, each demand/prefetch request carrying the reuse hint the
//! classifier attached at record time — together with the upper-level (L1/L2)
//! statistics and the programmed Address Bound Register bounds. Because the
//! upper levels are independent of the LLC replacement policy, a single
//! recording can then be replayed under any number of policies, and
//! [`LlcTrace::replay`] reproduces the **full** [`HierarchyStats`] of a
//! direct simulation bit-for-bit.
//!
//! Three workflows use recorded traces:
//!
//! 1. **Replay-mode campaigns** (`grasp-core`): record each
//!    (dataset, reordering, application) cell once, fan the stream out across
//!    the policy grid.
//! 2. **OPT comparison (Fig. 11 / Table VII).**
//!    [`crate::policy::opt::optimal_misses`] computes the minimum achievable
//!    misses on the demand stream ([`LlcTrace::demand_vec`]) while the online
//!    policies replay the same stream — possibly for a *different* LLC size,
//!    in which case [`LlcTrace::replay_with_classifier`] recomputes the reuse
//!    hints for the new High/Moderate region extents (the recorded ABR bounds
//!    make that classifier reconstructible from the trace alone).
//! 3. **Policy micro-benchmarks**, which measure simulator throughput on
//!    synthetic traces (the [`replay`] free function).
//!
//! # Layout
//!
//! Records are packed into a struct-of-arrays pair of a 64-bit address and a
//! 32-bit metadata word (kind, hint, region, site — 12 bytes per record), and
//! the arrays are **chunked**: storage grows in fixed-size chunks of
//! [`CHUNK_RECORDS`] records instead of one contiguous allocation. Appending
//! never relocates more than one chunk, so a long recording costs neither the
//! 2× transient footprint nor the O(len) copy of `Vec` doubling — the trace
//! spills gracefully as it grows.

use crate::addr::Address;
use crate::cache::SetAssocCache;
use crate::config::CacheConfig;
use crate::hint::{RegionClassifier, ReuseHint};
use crate::policy::PolicyDispatch;
use crate::request::{AccessInfo, AccessKind, RegionLabel};
use crate::stage::{LlcSink, LlcStage};
use crate::stats::{CacheStats, HierarchyStats};

/// Records per storage chunk (a 64 Ki-record chunk is 768 KiB).
pub const CHUNK_RECORDS: usize = 1 << 16;
const CHUNK_SHIFT: u32 = CHUNK_RECORDS.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_RECORDS - 1;

const META_WRITE_BIT: u32 = 1;
const META_HINT_SHIFT: u32 = 1;
const META_REGION_SHIFT: u32 = 3;
/// Event-kind bits (mutually exclusive; all clear = demand).
const META_PREFETCH_BIT: u32 = 1 << 6;
const META_WRITEBACK_BIT: u32 = 1 << 7;
const META_FLUSH_BIT: u32 = 1 << 8;
const META_SITE_SHIFT: u32 = 16;

/// One event of the recorded post-L2 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A demand request that missed L1 and L2 (hint attached at record time).
    Demand(AccessInfo),
    /// A prefetch request that missed L1 and L2.
    Prefetch(AccessInfo),
    /// The writeback of a dirty victim evicted past L2.
    Writeback(Address),
    /// A hierarchy flush between experiment phases.
    Flush,
}

fn encode_meta(info: &AccessInfo, kind_bit: u32) -> u32 {
    let mut meta = kind_bit;
    if info.is_write() {
        meta |= META_WRITE_BIT;
    }
    meta |= u32::from(info.hint.encode()) << META_HINT_SHIFT;
    meta |= (info.region.index() as u32) << META_REGION_SHIFT;
    meta |= u32::from(info.site) << META_SITE_SHIFT;
    meta
}

fn decode_info(addr: Address, meta: u32) -> AccessInfo {
    AccessInfo {
        addr,
        kind: if meta & META_WRITE_BIT != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        site: (meta >> META_SITE_SHIFT) as u16,
        hint: ReuseHint::decode(((meta >> META_HINT_SHIFT) & 0b11) as u8),
        region: RegionLabel::ALL[((meta >> META_REGION_SHIFT) & 0b111) as usize],
    }
}

fn decode_event(addr: Address, meta: u32) -> TraceEvent {
    if meta & META_WRITEBACK_BIT != 0 {
        TraceEvent::Writeback(addr)
    } else if meta & META_FLUSH_BIT != 0 {
        TraceEvent::Flush
    } else if meta & META_PREFETCH_BIT != 0 {
        TraceEvent::Prefetch(decode_info(addr, meta))
    } else {
        TraceEvent::Demand(decode_info(addr, meta))
    }
}

/// One fixed-capacity struct-of-arrays storage chunk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Chunk {
    addrs: Vec<Address>,
    meta: Vec<u32>,
}

impl Chunk {
    fn is_full(&self) -> bool {
        self.addrs.len() == CHUNK_RECORDS
    }
}

/// Upper-level state recorded alongside the post-L2 stream: everything replay
/// needs to rebuild full hierarchy statistics (and the classifier) without
/// re-running the application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordContext {
    /// Final L1-D statistics of the recording run.
    pub l1: CacheStats,
    /// Final L2 statistics of the recording run.
    pub l2: CacheStats,
    /// The Address Bound Register bounds the application programmed (empty
    /// when the ABRs stayed unprogrammed).
    pub abr_bounds: Vec<(Address, Address)>,
}

/// A compact, append-only record of the post-L2 request stream (see the
/// module docs for the role it plays in the record/replay pipeline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlcTrace {
    chunks: Vec<Chunk>,
    len: usize,
    demand_len: usize,
    context: RecordContext,
}

impl LlcTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with chunk slots pre-reserved for `capacity`
    /// records.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut trace = Self::default();
        trace.reserve(capacity);
        trace
    }

    /// Pre-reserves storage for at least `additional` more records. Only
    /// bounded work is done eagerly: the chunk directory is sized and the
    /// current chunk is grown to its fixed capacity; further chunks are
    /// allocated lazily as recording proceeds.
    pub fn reserve(&mut self, additional: usize) {
        let total_chunks = (self.len + additional).div_ceil(CHUNK_RECORDS);
        self.chunks
            .reserve(total_chunks.saturating_sub(self.chunks.len()));
        if additional > 0 {
            if self.chunks.is_empty() {
                self.chunks.push(Chunk::default());
            }
            let last = self.chunks.last_mut().expect("just ensured");
            let want = additional.min(CHUNK_RECORDS - last.addrs.len());
            last.addrs.reserve(want);
            last.meta.reserve(want);
        }
    }

    /// Estimated number of post-L2 records for a run over `edges` edges and
    /// `iterations` traced iterations.
    ///
    /// The edge stream dominates the access stream and the upper levels
    /// filter most of it, so a quarter of the touched edges pre-sizes the
    /// trace without reallocation in the common case. The cap bounds the
    /// eager commitment (~50 MB of records) when many recording runs share a
    /// machine — e.g. a recording campaign with one worker per core; the
    /// trace still grows past it chunk by chunk if needed.
    pub fn estimate_capacity(edges: u64, iterations: u64) -> usize {
        (edges * iterations.max(1) / 4).min(1 << 22) as usize
    }

    #[inline]
    fn push_raw(&mut self, addr: Address, meta: u32) {
        if self.chunks.last().is_none_or(Chunk::is_full) {
            let mut chunk = Chunk::default();
            chunk.addrs.reserve(CHUNK_RECORDS);
            chunk.meta.reserve(CHUNK_RECORDS);
            self.chunks.push(chunk);
        }
        let chunk = self.chunks.last_mut().expect("just ensured");
        chunk.addrs.push(addr);
        chunk.meta.push(meta);
        self.len += 1;
    }

    /// Appends one demand record.
    #[inline]
    pub fn push(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, 0));
        self.demand_len += 1;
    }

    /// Appends one prefetch record.
    #[inline]
    pub fn push_prefetch(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, META_PREFETCH_BIT));
    }

    /// Appends one writeback record.
    #[inline]
    pub fn push_writeback(&mut self, addr: Address) {
        self.push_raw(addr, META_WRITEBACK_BIT);
    }

    /// Appends a flush marker (hierarchy flushed between experiment phases).
    pub fn push_flush(&mut self) {
        self.push_raw(0, META_FLUSH_BIT);
    }

    /// Total number of recorded events (demand + prefetch + writeback +
    /// flush markers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of demand records (== the LLC's demand accesses).
    pub fn demand_len(&self) -> usize {
        self.demand_len
    }

    /// Upper-level statistics and ABR bounds recorded alongside the stream.
    pub fn context(&self) -> &RecordContext {
        &self.context
    }

    /// Attaches the recording run's upper-level context (called once, when
    /// recording finishes).
    pub fn set_context(&mut self, context: RecordContext) {
        self.context = context;
    }

    /// The Address Bound Register bounds programmed during the recording run.
    pub fn abr_bounds(&self) -> &[(Address, Address)] {
        &self.context.abr_bounds
    }

    /// Decodes the event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> TraceEvent {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let chunk = &self.chunks[index >> CHUNK_SHIFT];
        let offset = index & CHUNK_MASK;
        decode_event(chunk.addrs[offset], chunk.meta[offset])
    }

    /// Iterates over the decoded events in record order.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.chunks.iter().flat_map(|chunk| {
            chunk
                .addrs
                .iter()
                .zip(&chunk.meta)
                .map(|(&addr, &meta)| decode_event(addr, meta))
        })
    }

    /// Decodes the whole event stream into a `Vec`.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().collect()
    }

    /// Iterates over the demand requests only (the stream Belady's OPT and
    /// the legacy single-cache replay helpers operate on).
    pub fn demand_accesses(&self) -> impl Iterator<Item = AccessInfo> + '_ {
        self.iter().filter_map(|event| match event {
            TraceEvent::Demand(info) => Some(info),
            _ => None,
        })
    }

    /// Decodes the demand requests into a `Vec<AccessInfo>` (for consumers
    /// that need repeated random access, like the OPT replay sweeps).
    pub fn demand_vec(&self) -> Vec<AccessInfo> {
        self.demand_accesses().collect()
    }

    /// Replays the recorded stream through a fresh [`LlcStage`] with the
    /// given policy and returns the **full** hierarchy statistics of the run:
    /// the recorded L1/L2 stats plus the replayed LLC stats, bit-identical to
    /// having simulated the whole hierarchy directly under that policy.
    pub fn replay(&self, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> HierarchyStats {
        self.replay_impl(config, policy, None)
    }

    /// Replays with reuse hints *recomputed* by `classifier` (used when the
    /// replayed LLC size differs from the size the trace was recorded with,
    /// e.g. the Table VII LLC-size sweep — rebuild the classifier from
    /// [`LlcTrace::abr_bounds`]). The recorded L1/L2 statistics still
    /// describe the recording hierarchy.
    pub fn replay_with_classifier(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
        classifier: &RegionClassifier,
    ) -> HierarchyStats {
        self.replay_impl(config, policy, Some(classifier))
    }

    fn replay_impl(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
        reclassify: Option<&RegionClassifier>,
    ) -> HierarchyStats {
        let rehint = |info: AccessInfo| match reclassify {
            Some(classifier) => info.with_hint(classifier.classify(info.addr)),
            None => info,
        };
        let mut stage = LlcStage::new(config, policy);
        for event in self.iter() {
            match event {
                TraceEvent::Demand(info) => {
                    stage.demand(&rehint(info));
                }
                TraceEvent::Prefetch(info) => stage.prefetch(&rehint(info)),
                TraceEvent::Writeback(addr) => stage.writeback(addr),
                TraceEvent::Flush => stage.flush(),
            }
        }
        self.assemble(stage)
    }

    fn assemble(&self, stage: LlcStage) -> HierarchyStats {
        HierarchyStats {
            l1: self.context.l1.clone(),
            l2: self.context.l2.clone(),
            memory_accesses: stage.memory_accesses(),
            llc: stage.into_stats(),
        }
    }
}

/// Recording sink: the trace consumes the post-L2 stream produced by
/// [`crate::stage::UpperLevels`] without simulating an LLC (demand requests
/// report a miss, which nothing above the LLC observes).
impl LlcSink for LlcTrace {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        self.push(info);
        false
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        self.push_prefetch(info);
    }

    fn writeback(&mut self, addr: Address) {
        self.push_writeback(addr);
    }
}

impl FromIterator<AccessInfo> for LlcTrace {
    fn from_iter<I: IntoIterator<Item = AccessInfo>>(iter: I) -> Self {
        let mut trace = Self::new();
        for info in iter {
            trace.push(&info);
        }
        trace
    }
}

/// Replays a demand-access trace through a standalone LLC with the given
/// policy and returns the resulting statistics (synthetic-trace workflows;
/// recorded runs should prefer [`LlcTrace::replay`]).
pub fn replay(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    for info in trace {
        cache.access(info);
    }
    cache.stats().clone()
}

/// Replays a demand-access trace with reuse hints *recomputed* by
/// `classifier` (LLC-size sweeps over synthetic or decoded traces).
pub fn replay_with_classifier(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
    classifier: &RegionClassifier,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    for info in trace {
        let reclassified = info.with_hint(classifier.classify(info.addr));
        cache.access(&reclassified);
    }
    cache.stats().clone()
}

/// Percentage of misses eliminated by `candidate` relative to `baseline`
/// (positive = fewer misses). This is the metric of Figs. 5 and 11.
pub fn misses_eliminated_pct(baseline_misses: u64, candidate_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (baseline_misses as f64 - candidate_misses as f64) / baseline_misses as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::{AddressBoundRegisters, ReuseHint};
    use crate::policy::grasp::Grasp;
    use crate::policy::lru::Lru;
    use crate::policy::opt::optimal_misses;
    use crate::policy::rrip::Drrip;
    use crate::request::RegionLabel;

    /// A thrash-prone trace: a hot working set that fits in the cache plus a
    /// long stream of single-use blocks.
    fn thrashy_trace(hot_blocks: u64, cold_blocks: u64, rounds: u64) -> Vec<AccessInfo> {
        let mut trace = Vec::new();
        for r in 0..rounds {
            for b in 0..hot_blocks {
                trace.push(
                    AccessInfo::read(b * 64)
                        .with_hint(ReuseHint::High)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
            for c in 0..cold_blocks {
                let addr = (hot_blocks + r * cold_blocks + c) * 64;
                trace.push(
                    AccessInfo::read(addr)
                        .with_hint(ReuseHint::Low)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
        }
        trace
    }

    fn llc_config() -> CacheConfig {
        CacheConfig::new(64 * 256, 16, 64) // 256 blocks, 16 ways
    }

    #[test]
    fn grasp_beats_lru_and_rrip_on_thrashy_traces() {
        let config = llc_config();
        // Hot set of 128 blocks (fits) + 512 cold blocks per round.
        let trace = thrashy_trace(128, 512, 20);
        let lru = replay(
            &trace,
            config,
            Box::new(Lru::new(config.sets(), config.ways)),
        );
        let rrip = replay(
            &trace,
            config,
            Box::new(Drrip::new(config.sets(), config.ways, 1)),
        );
        let grasp = replay(
            &trace,
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
        );
        assert!(
            grasp.misses < lru.misses,
            "grasp {} should beat lru {}",
            grasp.misses,
            lru.misses
        );
        assert!(
            grasp.misses <= rrip.misses,
            "grasp {} should not lose to rrip {}",
            grasp.misses,
            rrip.misses
        );
    }

    #[test]
    fn opt_lower_bounds_every_online_policy() {
        let config = llc_config();
        let trace = thrashy_trace(64, 300, 10);
        let opt = optimal_misses(&trace, &config);
        for policy in [
            replay(
                &trace,
                config,
                Box::new(Lru::new(config.sets(), config.ways)),
            ),
            replay(
                &trace,
                config,
                Box::new(Drrip::new(config.sets(), config.ways, 1)),
            ),
            replay(
                &trace,
                config,
                Box::new(Grasp::new(config.sets(), config.ways, 1)),
            ),
        ] {
            assert!(opt.misses <= policy.misses);
        }
    }

    #[test]
    fn llc_trace_round_trips_every_field() {
        let infos = [
            AccessInfo::read(0x1234)
                .with_site(77)
                .with_hint(ReuseHint::High)
                .with_region(RegionLabel::EdgeArray),
            AccessInfo::write(u64::MAX - 63)
                .with_site(u16::MAX)
                .with_hint(ReuseHint::Moderate)
                .with_region(RegionLabel::Frontier),
            AccessInfo::read(0),
        ];
        let mut trace = LlcTrace::with_capacity(infos.len());
        for info in &infos {
            trace.push(info);
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.demand_len(), 3);
        for (i, expected) in infos.iter().enumerate() {
            assert_eq!(trace.get(i), TraceEvent::Demand(*expected));
        }
        assert_eq!(trace.demand_vec(), infos.to_vec());
        let rebuilt: LlcTrace = trace.demand_accesses().collect();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let demand = AccessInfo::write(0x40)
            .with_site(9)
            .with_hint(ReuseHint::Low)
            .with_region(RegionLabel::Property);
        let prefetch = AccessInfo::read(0x80)
            .with_site(9)
            .with_hint(ReuseHint::Moderate)
            .with_region(RegionLabel::EdgeArray);
        let mut trace = LlcTrace::new();
        trace.push(&demand);
        trace.push_prefetch(&prefetch);
        trace.push_writeback(0xFFC0);
        trace.push_flush();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.demand_len(), 1);
        assert_eq!(
            trace.to_vec(),
            vec![
                TraceEvent::Demand(demand),
                TraceEvent::Prefetch(prefetch),
                TraceEvent::Writeback(0xFFC0),
                TraceEvent::Flush,
            ]
        );
        assert_eq!(trace.demand_vec(), vec![demand]);
    }

    #[test]
    fn chunked_storage_preserves_order_across_boundaries() {
        let mut trace = LlcTrace::new();
        let total = CHUNK_RECORDS + CHUNK_RECORDS / 2;
        for i in 0..total {
            trace.push(&AccessInfo::read(i as u64 * 64).with_site((i % 7) as u16));
        }
        assert_eq!(trace.len(), total);
        // Spot-check around the chunk boundary plus random access deep in.
        for i in [
            0,
            CHUNK_RECORDS - 1,
            CHUNK_RECORDS,
            CHUNK_RECORDS + 1,
            total - 1,
        ] {
            match trace.get(i) {
                TraceEvent::Demand(info) => {
                    assert_eq!(info.addr, i as u64 * 64);
                    assert_eq!(info.site, (i % 7) as u16);
                }
                other => panic!("expected demand at {i}, got {other:?}"),
            }
        }
        assert_eq!(trace.iter().count(), total);
    }

    #[test]
    fn capacity_estimate_scales_and_caps() {
        assert_eq!(LlcTrace::estimate_capacity(1000, 4), 1000);
        // Zero iterations are clamped to one traced iteration.
        assert_eq!(LlcTrace::estimate_capacity(1000, 0), 250);
        assert_eq!(
            LlcTrace::estimate_capacity(u64::MAX / 8, 2),
            1 << 22,
            "estimate must stay capped for huge runs"
        );
    }

    #[test]
    fn misses_eliminated_pct_math() {
        assert!((misses_eliminated_pct(100, 80) - 20.0).abs() < 1e-12);
        assert!((misses_eliminated_pct(100, 120) + 20.0).abs() < 1e-12);
        assert_eq!(misses_eliminated_pct(0, 10), 0.0);
    }

    #[test]
    fn trace_replay_reports_full_hierarchy_stats() {
        let mut trace: LlcTrace = thrashy_trace(32, 128, 4).into_iter().collect();
        let mut context = RecordContext::default();
        context.l1.record(RegionLabel::Property, false);
        context.l2.record(RegionLabel::Property, false);
        trace.set_context(context);
        let config = llc_config();
        let stats = trace.replay(config, Box::new(Lru::new(config.sets(), config.ways)));
        assert_eq!(stats.l1.accesses, 1, "recorded upper stats are carried");
        assert_eq!(stats.llc.accesses as usize, trace.demand_len());
        assert_eq!(stats.memory_accesses, stats.llc.misses);
    }

    #[test]
    fn reclassification_changes_hints_with_llc_size() {
        // Record hints for a small LLC, then replay for a larger one: more of
        // the property array becomes High-Reuse.
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0, 1024 * 1024);
        let small = RegionClassifier::new(abrs.clone(), 64 * 1024);
        let large = RegionClassifier::new(abrs, 256 * 1024);
        let addr = 128 * 1024; // past the small High region, inside the large one
        assert_eq!(small.classify(addr), ReuseHint::Low);
        assert_eq!(large.classify(addr), ReuseHint::High);

        let trace: LlcTrace = [AccessInfo::read(addr).with_hint(small.classify(addr))]
            .into_iter()
            .collect();
        let config = llc_config();
        let stats = trace.replay_with_classifier(
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
            &large,
        );
        assert_eq!(stats.llc.accesses, 1);
    }
}
