//! LLC access traces and trace replay.
//!
//! Two workflows use recorded traces:
//!
//! 1. **OPT comparison (Fig. 11 / Table VII).** The hierarchy records the
//!    demand LLC access stream; [`crate::policy::opt::optimal_misses`]
//!    computes the minimum achievable misses while [`replay`] re-runs the same
//!    stream under online policies (LRU, RRIP, GRASP) — possibly for a
//!    *different* LLC size, in which case [`replay_with_classifier`]
//!    recomputes the reuse hints for the new High/Moderate region extents.
//! 2. **Policy micro-benchmarks**, which measure simulator throughput on
//!    synthetic traces.

use crate::addr::Address;
use crate::cache::SetAssocCache;
use crate::config::CacheConfig;
use crate::hint::{RegionClassifier, ReuseHint};
use crate::policy::PolicyDispatch;
use crate::request::{AccessInfo, AccessKind, RegionLabel};
use crate::stats::CacheStats;

/// A compact, append-only record of demand LLC accesses.
///
/// The OPT study records every post-L2 access of a run; storing full
/// [`AccessInfo`] values (16 bytes each) made the recording loop both
/// allocation- and bandwidth-heavy. `LlcTrace` packs each record into a
/// 64-bit address plus a 32-bit metadata word (kind, hint, region, site) in
/// struct-of-arrays layout and supports pre-sizing via
/// [`LlcTrace::with_capacity`] / [`LlcTrace::reserve`], so the hot loop
/// neither reallocates nor writes padding bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlcTrace {
    addrs: Vec<Address>,
    meta: Vec<u32>,
}

const META_WRITE_BIT: u32 = 1;
const META_HINT_SHIFT: u32 = 1;
const META_REGION_SHIFT: u32 = 3;
const META_SITE_SHIFT: u32 = 16;

fn encode_meta(info: &AccessInfo) -> u32 {
    let mut meta = 0u32;
    if info.is_write() {
        meta |= META_WRITE_BIT;
    }
    meta |= u32::from(info.hint.encode()) << META_HINT_SHIFT;
    meta |= (info.region.index() as u32) << META_REGION_SHIFT;
    meta |= u32::from(info.site) << META_SITE_SHIFT;
    meta
}

fn decode_record(addr: Address, meta: u32) -> AccessInfo {
    AccessInfo {
        addr,
        kind: if meta & META_WRITE_BIT != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        site: (meta >> META_SITE_SHIFT) as u16,
        hint: ReuseHint::decode(((meta >> META_HINT_SHIFT) & 0b11) as u8),
        region: RegionLabel::ALL[((meta >> META_REGION_SHIFT) & 0b111) as usize],
    }
}

impl LlcTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            addrs: Vec::with_capacity(capacity),
            meta: Vec::with_capacity(capacity),
        }
    }

    /// Ensures room for at least `additional` more records.
    pub fn reserve(&mut self, additional: usize) {
        self.addrs.reserve(additional);
        self.meta.reserve(additional);
    }

    /// Appends one record.
    #[inline]
    pub fn push(&mut self, info: &AccessInfo) {
        self.addrs.push(info.addr);
        self.meta.push(encode_meta(info));
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Decodes the record at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> AccessInfo {
        decode_record(self.addrs[index], self.meta[index])
    }

    /// Iterates over the decoded records.
    pub fn iter(&self) -> impl Iterator<Item = AccessInfo> + '_ {
        self.addrs
            .iter()
            .zip(&self.meta)
            .map(|(&addr, &meta)| decode_record(addr, meta))
    }

    /// Decodes the whole trace into a `Vec<AccessInfo>` (for consumers that
    /// need repeated random access, like the OPT replay sweeps).
    pub fn to_vec(&self) -> Vec<AccessInfo> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &'a LlcTrace {
    type Item = AccessInfo;
    type IntoIter = Box<dyn Iterator<Item = AccessInfo> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<AccessInfo> for LlcTrace {
    fn from_iter<I: IntoIterator<Item = AccessInfo>>(iter: I) -> Self {
        let mut trace = Self::new();
        for info in iter {
            trace.push(&info);
        }
        trace
    }
}

/// Replays a recorded LLC access trace through a standalone LLC with the
/// given policy and returns the resulting statistics.
pub fn replay(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    for info in trace {
        cache.access(info);
    }
    cache.stats().clone()
}

/// Replays a trace with reuse hints *recomputed* by `classifier` (used when
/// the replayed LLC size differs from the size the trace was recorded with,
/// e.g. the Table VII LLC-size sweep).
pub fn replay_with_classifier(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
    classifier: &RegionClassifier,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    for info in trace {
        let reclassified = info.with_hint(classifier.classify(info.addr));
        cache.access(&reclassified);
    }
    cache.stats().clone()
}

/// Percentage of misses eliminated by `candidate` relative to `baseline`
/// (positive = fewer misses). This is the metric of Figs. 5 and 11.
pub fn misses_eliminated_pct(baseline_misses: u64, candidate_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (baseline_misses as f64 - candidate_misses as f64) / baseline_misses as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::{AddressBoundRegisters, ReuseHint};
    use crate::policy::grasp::Grasp;
    use crate::policy::lru::Lru;
    use crate::policy::opt::optimal_misses;
    use crate::policy::rrip::Drrip;
    use crate::request::RegionLabel;

    /// A thrash-prone trace: a hot working set that fits in the cache plus a
    /// long stream of single-use blocks.
    fn thrashy_trace(hot_blocks: u64, cold_blocks: u64, rounds: u64) -> Vec<AccessInfo> {
        let mut trace = Vec::new();
        for r in 0..rounds {
            for b in 0..hot_blocks {
                trace.push(
                    AccessInfo::read(b * 64)
                        .with_hint(ReuseHint::High)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
            for c in 0..cold_blocks {
                let addr = (hot_blocks + r * cold_blocks + c) * 64;
                trace.push(
                    AccessInfo::read(addr)
                        .with_hint(ReuseHint::Low)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
        }
        trace
    }

    fn llc_config() -> CacheConfig {
        CacheConfig::new(64 * 256, 16, 64) // 256 blocks, 16 ways
    }

    #[test]
    fn grasp_beats_lru_and_rrip_on_thrashy_traces() {
        let config = llc_config();
        // Hot set of 128 blocks (fits) + 512 cold blocks per round.
        let trace = thrashy_trace(128, 512, 20);
        let lru = replay(
            &trace,
            config,
            Box::new(Lru::new(config.sets(), config.ways)),
        );
        let rrip = replay(
            &trace,
            config,
            Box::new(Drrip::new(config.sets(), config.ways, 1)),
        );
        let grasp = replay(
            &trace,
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
        );
        assert!(
            grasp.misses < lru.misses,
            "grasp {} should beat lru {}",
            grasp.misses,
            lru.misses
        );
        assert!(
            grasp.misses <= rrip.misses,
            "grasp {} should not lose to rrip {}",
            grasp.misses,
            rrip.misses
        );
    }

    #[test]
    fn opt_lower_bounds_every_online_policy() {
        let config = llc_config();
        let trace = thrashy_trace(64, 300, 10);
        let opt = optimal_misses(&trace, &config);
        for policy in [
            replay(
                &trace,
                config,
                Box::new(Lru::new(config.sets(), config.ways)),
            ),
            replay(
                &trace,
                config,
                Box::new(Drrip::new(config.sets(), config.ways, 1)),
            ),
            replay(
                &trace,
                config,
                Box::new(Grasp::new(config.sets(), config.ways, 1)),
            ),
        ] {
            assert!(opt.misses <= policy.misses);
        }
    }

    #[test]
    fn llc_trace_round_trips_every_field() {
        let infos = [
            AccessInfo::read(0x1234)
                .with_site(77)
                .with_hint(ReuseHint::High)
                .with_region(RegionLabel::EdgeArray),
            AccessInfo::write(u64::MAX - 63)
                .with_site(u16::MAX)
                .with_hint(ReuseHint::Moderate)
                .with_region(RegionLabel::Frontier),
            AccessInfo::read(0),
        ];
        let mut trace = LlcTrace::with_capacity(infos.len());
        for info in &infos {
            trace.push(info);
        }
        assert_eq!(trace.len(), 3);
        for (i, expected) in infos.iter().enumerate() {
            assert_eq!(&trace.get(i), expected);
        }
        assert_eq!(trace.to_vec(), infos.to_vec());
        let rebuilt: LlcTrace = trace.iter().collect();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn misses_eliminated_pct_math() {
        assert!((misses_eliminated_pct(100, 80) - 20.0).abs() < 1e-12);
        assert!((misses_eliminated_pct(100, 120) + 20.0).abs() < 1e-12);
        assert_eq!(misses_eliminated_pct(0, 10), 0.0);
    }

    #[test]
    fn reclassification_changes_hints_with_llc_size() {
        // Record hints for a small LLC, then replay for a larger one: more of
        // the property array becomes High-Reuse.
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0, 1024 * 1024);
        let small = RegionClassifier::new(abrs.clone(), 64 * 1024);
        let large = RegionClassifier::new(abrs, 256 * 1024);
        let addr = 128 * 1024; // past the small High region, inside the large one
        assert_eq!(small.classify(addr), ReuseHint::Low);
        assert_eq!(large.classify(addr), ReuseHint::High);

        let trace = vec![AccessInfo::read(addr).with_hint(small.classify(addr))];
        let config = llc_config();
        let stats = replay_with_classifier(
            &trace,
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
            &large,
        );
        assert_eq!(stats.accesses, 1);
    }
}
