//! The canonical post-L2 request stream: recording and replay.
//!
//! [`LlcTrace`] is the exchange format of the record-once / replay-many
//! experiment pipeline. One recording run captures everything the LLC will
//! ever see — demand requests, prefetch requests and dirty-victim writebacks,
//! in program order, each demand/prefetch request carrying the reuse hint the
//! classifier attached at record time — together with the upper-level (L1/L2)
//! statistics and the programmed Address Bound Register bounds. Because the
//! upper levels are independent of the LLC replacement policy, a single
//! recording can then be replayed under any number of policies, and
//! [`LlcTrace::replay`] reproduces the **full** [`HierarchyStats`] of a
//! direct simulation bit-for-bit.
//!
//! Three workflows use recorded traces:
//!
//! 1. **Replay-mode campaigns** (`grasp-core`): record each
//!    (dataset, reordering, application) cell once, fan the stream out across
//!    the policy grid.
//! 2. **OPT comparison (Fig. 11 / Table VII).**
//!    [`crate::policy::opt::optimal_misses`] computes the minimum achievable
//!    misses on the demand stream ([`LlcTrace::demand_vec`]) while the online
//!    policies replay the same stream — possibly for a *different* LLC size,
//!    in which case [`LlcTrace::replay_with_classifier`] recomputes the reuse
//!    hints for the new High/Moderate region extents (the recorded ABR bounds
//!    make that classifier reconstructible from the trace alone).
//! 3. **Policy micro-benchmarks**, which measure simulator throughput on
//!    synthetic traces (the [`replay`] free function).
//!
//! # Layout
//!
//! Records are packed into a struct-of-arrays pair of a 64-bit address and a
//! 32-bit metadata word (kind, hint, region, site — 12 bytes per record), and
//! the arrays are **chunked**: storage grows in fixed-size [`TraceChunk`]s of
//! [`CHUNK_RECORDS`] records instead of one contiguous allocation. Appending
//! never relocates more than one chunk, so a long recording costs neither the
//! 2× transient footprint nor the O(len) copy of `Vec` doubling — the trace
//! spills gracefully as it grows. Completed chunks are **frozen behind an
//! `Arc`**, which makes cloning a trace (and handing chunks to concurrent
//! consumers) free of record copies.
//!
//! # Streaming
//!
//! The record → replay barrier is optional. A [`TraceStreamer`] is the
//! streaming counterpart of the recording [`LlcTrace`]: it implements
//! [`LlcSink`], packs the post-L2 stream into the same frozen chunks, and
//! pushes each completed chunk through a **bounded single-producer,
//! multi-consumer chunk channel** ([`chunk_channel`]) instead of retaining
//! it. Every consumer drives a [`ChunkReplayer`] — the incremental,
//! chunk-at-a-time entry point to [`LlcStage`] — so an N-policy sweep
//! replays *while recording is still running*, sharing one stream with zero
//! copies, and the peak trace footprint is channel-depth × chunk-size
//! instead of the whole trace:
//!
//! ```text
//!  UpperLevels ──► TraceStreamer ──► [Arc<TraceChunk>; depth] ──► ChunkReplayer (policy A)
//!   (recorder)      freeze+send       bounded broadcast     ├──► ChunkReplayer (policy B)
//!                                                           └──► ...
//! ```
//!
//! The buffered and streaming paths replay through the *same*
//! [`ChunkReplayer`] code, so their statistics are bit-identical (pinned by
//! `tests/trace_properties.rs`).

pub mod persist;

use crate::addr::Address;
use crate::cache::{BatchOp, BatchScratch, SetAssocCache, BATCH_TILE};
use crate::config::CacheConfig;
use crate::hint::{RegionClassifier, ReuseHint};
use crate::policy::PolicyDispatch;
use crate::request::{AccessInfo, AccessKind, RegionLabel};
use crate::stage::{LlcSink, LlcStage};
use crate::stats::{CacheStats, HierarchyStats};
use crate::swar::kind_run_len;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

/// Records per storage chunk (a 64 Ki-record chunk is 768 KiB).
pub const CHUNK_RECORDS: usize = 1 << 16;
const CHUNK_SHIFT: u32 = CHUNK_RECORDS.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_RECORDS - 1;

const META_WRITE_BIT: u32 = 1;
const META_HINT_SHIFT: u32 = 1;
const META_REGION_SHIFT: u32 = 3;
/// Event-kind bits (mutually exclusive; all clear = demand).
pub(crate) const META_PREFETCH_BIT: u32 = 1 << 6;
pub(crate) const META_WRITEBACK_BIT: u32 = 1 << 7;
const META_FLUSH_BIT: u32 = 1 << 8;
const META_SITE_SHIFT: u32 = 16;

/// One event of the recorded post-L2 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A demand request that missed L1 and L2 (hint attached at record time).
    Demand(AccessInfo),
    /// A prefetch request that missed L1 and L2.
    Prefetch(AccessInfo),
    /// The writeback of a dirty victim evicted past L2.
    Writeback(Address),
    /// A hierarchy flush between experiment phases.
    Flush,
}

pub(crate) fn encode_meta(info: &AccessInfo, kind_bit: u32) -> u32 {
    let mut meta = kind_bit;
    if info.is_write() {
        meta |= META_WRITE_BIT;
    }
    meta |= u32::from(info.hint.encode()) << META_HINT_SHIFT;
    meta |= (info.region.index() as u32) << META_REGION_SHIFT;
    meta |= u32::from(info.site) << META_SITE_SHIFT;
    meta
}

fn decode_info(addr: Address, meta: u32) -> AccessInfo {
    AccessInfo {
        addr,
        kind: if meta & META_WRITE_BIT != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        site: (meta >> META_SITE_SHIFT) as u16,
        hint: ReuseHint::decode(((meta >> META_HINT_SHIFT) & 0b11) as u8),
        region: RegionLabel::ALL[((meta >> META_REGION_SHIFT) & 0b111) as usize],
    }
}

fn decode_event(addr: Address, meta: u32) -> TraceEvent {
    if meta & META_WRITEBACK_BIT != 0 {
        TraceEvent::Writeback(addr)
    } else if meta & META_FLUSH_BIT != 0 {
        TraceEvent::Flush
    } else if meta & META_PREFETCH_BIT != 0 {
        TraceEvent::Prefetch(decode_info(addr, meta))
    } else {
        TraceEvent::Demand(decode_info(addr, meta))
    }
}

/// Decodes one record of a flush-free batch (as emitted by
/// [`crate::UpperLevels::access_batch`] into [`LlcSink::push_batch`]) into
/// the request/op pair the batched LLC kernels consume.
#[inline]
pub(crate) fn decode_record(addr: Address, meta: u32) -> (AccessInfo, BatchOp) {
    debug_assert_eq!(meta & META_FLUSH_BIT, 0, "flush markers never batch");
    if meta & META_WRITEBACK_BIT != 0 {
        (AccessInfo::read(addr), BatchOp::Writeback)
    } else if meta & META_PREFETCH_BIT != 0 {
        (decode_info(addr, meta), BatchOp::Prefetch)
    } else {
        (decode_info(addr, meta), BatchOp::Demand)
    }
}

/// Number of demand records in a flush-free metadata column (records with
/// neither the prefetch nor the writeback bit set).
#[inline]
pub(crate) fn count_demand_records(meta: &[u32]) -> usize {
    meta.iter()
        .filter(|&&m| m & (META_PREFETCH_BIT | META_WRITEBACK_BIT) == 0)
        .count()
}

/// One fixed-capacity struct-of-arrays storage chunk of the post-L2 stream.
///
/// Chunks are the unit of sharing in the streaming pipeline: a completed
/// chunk is frozen behind an `Arc` and either kept by the recording
/// [`LlcTrace`] or broadcast through a [`chunk_channel`] to concurrent
/// [`ChunkReplayer`]s. A frozen chunk is never mutated again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceChunk {
    addrs: Vec<Address>,
    meta: Vec<u32>,
}

impl TraceChunk {
    fn with_capacity(records: usize) -> Self {
        let mut chunk = Self::default();
        chunk.addrs.reserve(records);
        chunk.meta.reserve(records);
        chunk
    }

    #[inline]
    fn push(&mut self, addr: Address, meta: u32) {
        self.addrs.push(addr);
        self.meta.push(meta);
    }

    fn get(&self, offset: usize) -> TraceEvent {
        decode_event(self.addrs[offset], self.meta[offset])
    }

    /// Number of records in the chunk.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Returns `true` when the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The chunk's raw struct-of-arrays columns (addresses and packed
    /// metadata words, index-aligned) — the view the batched replay kernel
    /// splits into runs and decodes column-wise.
    pub fn columns(&self) -> (&[Address], &[u32]) {
        (&self.addrs, &self.meta)
    }

    /// Decodes the chunk's events in record order.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.addrs
            .iter()
            .zip(&self.meta)
            .map(|(&addr, &meta)| decode_event(addr, meta))
    }

    /// Decodes the chunk's events in reverse record order (the backward pass
    /// of the chunk-native OPT simulation).
    pub fn events_rev(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.addrs
            .iter()
            .rev()
            .zip(self.meta.iter().rev())
            .map(|(&addr, &meta)| decode_event(addr, meta))
    }
}

/// Upper-level state recorded alongside the post-L2 stream: everything replay
/// needs to rebuild full hierarchy statistics (and the classifier) without
/// re-running the application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordContext {
    /// Final L1-D statistics of the recording run.
    pub l1: CacheStats,
    /// Final L2 statistics of the recording run.
    pub l2: CacheStats,
    /// The Address Bound Register bounds the application programmed (empty
    /// when the ABRs stayed unprogrammed).
    pub abr_bounds: Vec<(Address, Address)>,
}

/// A compact, append-only record of the post-L2 request stream (see the
/// module docs for the role it plays in the record/replay pipeline).
///
/// Completed chunks are frozen behind `Arc`s, so cloning a trace shares the
/// bulk of the storage, and [`LlcTrace::stream_into`] can re-broadcast an
/// already-buffered trace through a [`chunk_channel`] with zero copies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LlcTrace {
    frozen: Vec<Arc<TraceChunk>>,
    current: TraceChunk,
    len: usize,
    demand_len: usize,
    context: RecordContext,
}

impl LlcTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with chunk slots pre-reserved for `capacity`
    /// records.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut trace = Self::default();
        trace.reserve(capacity);
        trace
    }

    /// Pre-reserves storage for at least `additional` more records. Only
    /// bounded work is done eagerly: the chunk directory is sized and the
    /// current chunk is grown towards its fixed capacity; further chunks are
    /// allocated lazily as recording proceeds.
    pub fn reserve(&mut self, additional: usize) {
        let total_chunks = (self.len + additional).div_ceil(CHUNK_RECORDS);
        self.frozen
            .reserve(total_chunks.saturating_sub(self.frozen.len()));
        let want = additional.min(CHUNK_RECORDS - self.current.len());
        self.current.addrs.reserve(want);
        self.current.meta.reserve(want);
    }

    /// Estimated number of post-L2 records for a run over `edges` edges and
    /// `iterations` traced iterations.
    ///
    /// The edge stream dominates the access stream and the upper levels
    /// filter most of it, so a quarter of the touched edges pre-sizes the
    /// trace without reallocation in the common case. The cap bounds the
    /// eager commitment (~50 MB of records) when many recording runs share a
    /// machine — e.g. a recording campaign with one worker per core; the
    /// trace still grows past it chunk by chunk if needed.
    pub fn estimate_capacity(edges: u64, iterations: u64) -> usize {
        (edges * iterations.max(1) / 4).min(1 << 22) as usize
    }

    #[inline]
    fn push_raw(&mut self, addr: Address, meta: u32) {
        // A brand-new chunk (no capacity at all) is sized to its full fixed
        // extent up front; a chunk pre-sized by `reserve` keeps its bounded
        // reservation and grows normally if the estimate was short.
        if self.current.addrs.capacity() == 0 {
            self.current.addrs.reserve(CHUNK_RECORDS);
            self.current.meta.reserve(CHUNK_RECORDS);
        }
        self.current.push(addr, meta);
        self.len += 1;
        if self.current.len() == CHUNK_RECORDS {
            let full = std::mem::take(&mut self.current);
            self.frozen.push(Arc::new(full));
        }
    }

    /// Appends a whole flush-free record batch column-wise: the encoded
    /// address/metadata columns are copied into the chunked storage with
    /// `extend_from_slice` runs, splitting at chunk boundaries, so bulk
    /// recording materializes no per-record structs and takes no per-record
    /// branches. A chunk pre-sized short by [`LlcTrace::reserve`] is topped
    /// up with `reserve_exact` toward its fixed extent — a bulk append never
    /// `Vec`-doubles a chunk mid-record.
    pub(crate) fn push_batch_raw(&mut self, addrs: &[Address], meta: &[u32]) {
        debug_assert_eq!(addrs.len(), meta.len(), "index-aligned columns");
        self.len += addrs.len();
        self.demand_len += count_demand_records(meta);
        let (mut addrs, mut meta) = (addrs, meta);
        while !addrs.is_empty() {
            let take = (CHUNK_RECORDS - self.current.len()).min(addrs.len());
            if self.current.addrs.capacity() == 0 {
                self.current.addrs.reserve(CHUNK_RECORDS);
                self.current.meta.reserve(CHUNK_RECORDS);
            } else {
                self.current.addrs.reserve_exact(take);
                self.current.meta.reserve_exact(take);
            }
            self.current.addrs.extend_from_slice(&addrs[..take]);
            self.current.meta.extend_from_slice(&meta[..take]);
            if self.current.len() == CHUNK_RECORDS {
                let full = std::mem::take(&mut self.current);
                self.frozen.push(Arc::new(full));
            }
            addrs = &addrs[take..];
            meta = &meta[take..];
        }
    }

    /// Appends one demand record.
    #[inline]
    pub fn push(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, 0));
        self.demand_len += 1;
    }

    /// Appends one prefetch record.
    #[inline]
    pub fn push_prefetch(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, META_PREFETCH_BIT));
    }

    /// Appends one writeback record.
    #[inline]
    pub fn push_writeback(&mut self, addr: Address) {
        self.push_raw(addr, META_WRITEBACK_BIT);
    }

    /// Appends a flush marker (hierarchy flushed between experiment phases).
    pub fn push_flush(&mut self) {
        self.push_raw(0, META_FLUSH_BIT);
    }

    /// Total number of recorded events (demand + prefetch + writeback +
    /// flush markers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of demand records (== the LLC's demand accesses).
    pub fn demand_len(&self) -> usize {
        self.demand_len
    }

    /// Upper-level statistics and ABR bounds recorded alongside the stream.
    pub fn context(&self) -> &RecordContext {
        &self.context
    }

    /// Attaches the recording run's upper-level context (called once, when
    /// recording finishes).
    pub fn set_context(&mut self, context: RecordContext) {
        self.context = context;
    }

    /// The Address Bound Register bounds programmed during the recording run.
    pub fn abr_bounds(&self) -> &[(Address, Address)] {
        &self.context.abr_bounds
    }

    /// Decodes the event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> TraceEvent {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let chunk_index = index >> CHUNK_SHIFT;
        let offset = index & CHUNK_MASK;
        if chunk_index < self.frozen.len() {
            self.frozen[chunk_index].get(offset)
        } else {
            self.current.get(offset)
        }
    }

    /// The trace's storage chunks in stream order (frozen chunks first, then
    /// the in-progress tail when non-empty) — the view chunk-native
    /// consumers like the streamed OPT simulation operate on.
    pub fn chunks(&self) -> impl Iterator<Item = &TraceChunk> {
        self.frozen
            .iter()
            .map(Arc::as_ref)
            .chain(std::iter::once(&self.current).filter(|chunk| !chunk.is_empty()))
    }

    /// Iterates over the decoded events in record order.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.chunks().flat_map(TraceChunk::events)
    }

    /// Iterates over the decoded events in reverse record order.
    pub fn iter_rev(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.current.events_rev().chain(
            self.frozen
                .iter()
                .rev()
                .flat_map(|chunk| chunk.events_rev()),
        )
    }

    /// Decodes the whole event stream into a `Vec`.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().collect()
    }

    /// Iterates over the demand requests only (the stream Belady's OPT and
    /// the legacy single-cache replay helpers operate on).
    pub fn demand_accesses(&self) -> impl Iterator<Item = AccessInfo> + '_ {
        self.iter().filter_map(|event| match event {
            TraceEvent::Demand(info) => Some(info),
            _ => None,
        })
    }

    /// Iterates over the demand requests in reverse stream order (the
    /// backward next-use pass of [`crate::policy::opt::optimal_misses_trace`]
    /// runs directly on this view — no `Vec<AccessInfo>` materialization).
    pub fn demand_accesses_rev(&self) -> impl Iterator<Item = AccessInfo> + '_ {
        self.iter_rev().filter_map(|event| match event {
            TraceEvent::Demand(info) => Some(info),
            _ => None,
        })
    }

    /// Decodes the demand requests into a `Vec<AccessInfo>` (for consumers
    /// that need repeated random access; streaming consumers should prefer
    /// [`LlcTrace::demand_accesses`] / [`LlcTrace::demand_accesses_rev`]).
    pub fn demand_vec(&self) -> Vec<AccessInfo> {
        self.demand_accesses().collect()
    }

    /// Replays the recorded stream through a fresh [`LlcStage`] with the
    /// given policy and returns the **full** hierarchy statistics of the run:
    /// the recorded L1/L2 stats plus the replayed LLC stats, bit-identical to
    /// having simulated the whole hierarchy directly under that policy.
    pub fn replay(&self, config: CacheConfig, policy: impl Into<PolicyDispatch>) -> HierarchyStats {
        self.replay_impl(config, policy, None, false)
    }

    /// Replays the recorded stream through **every** policy of a sweep in
    /// one pass over the chunks, decoding each tile once for the whole
    /// fan-out (see [`FanoutReplayer`]). Element `i` of the result is
    /// bit-identical to `self.replay(config, policies[i])`.
    pub fn replay_fanout<P: Into<PolicyDispatch>>(
        &self,
        config: CacheConfig,
        policies: impl IntoIterator<Item = P>,
    ) -> Vec<HierarchyStats> {
        let mut replayer = FanoutReplayer::new(config, policies);
        for chunk in self.chunks() {
            replayer.feed(chunk);
        }
        replayer.finish(&self.context)
    }

    /// Replays through the per-event scalar path instead of the batched
    /// kernel. The two are bit-identical; this entry point exists as the
    /// reference for parity tests and the batched-replay benchmark table.
    pub fn replay_scalar(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
    ) -> HierarchyStats {
        self.replay_impl(config, policy, None, true)
    }

    /// Replays with reuse hints *recomputed* by `classifier` (used when the
    /// replayed LLC size differs from the size the trace was recorded with,
    /// e.g. the Table VII LLC-size sweep — rebuild the classifier from
    /// [`LlcTrace::abr_bounds`]). The recorded L1/L2 statistics still
    /// describe the recording hierarchy.
    pub fn replay_with_classifier(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
        classifier: &RegionClassifier,
    ) -> HierarchyStats {
        self.replay_impl(config, policy, Some(classifier), false)
    }

    fn replay_impl(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
        reclassify: Option<&RegionClassifier>,
        scalar: bool,
    ) -> HierarchyStats {
        let mut replayer = ChunkReplayer::new(config, policy);
        if let Some(classifier) = reclassify {
            replayer = replayer.with_classifier(classifier.clone());
        }
        for chunk in self.chunks() {
            if scalar {
                replayer.feed_scalar(chunk);
            } else {
                replayer.feed(chunk);
            }
        }
        replayer.finish(&self.context)
    }

    /// Replays the **demand** stream only through a standalone LLC, with
    /// reuse hints recomputed by `classifier` — the online-policy side of the
    /// OPT comparison (Fig. 11 / Table VII), which must give every scheme the
    /// same stream Belady's bound is computed on. Streams straight off the
    /// chunked storage; no `Vec<AccessInfo>` is materialized.
    pub fn replay_demand_with_classifier(
        &self,
        config: CacheConfig,
        policy: impl Into<PolicyDispatch>,
        classifier: &RegionClassifier,
    ) -> CacheStats {
        replay_demand_reclassified(self.demand_accesses(), config, policy, classifier)
    }

    /// Re-broadcasts an already-buffered trace through a [`chunk_channel`]:
    /// frozen chunks are shared (`Arc` clones, no record copies), the
    /// in-progress tail is frozen on the fly, and the recorded context is
    /// sent as the end-of-stream marker. Lets streaming consumers replay a
    /// retained trace through the exact pipeline live recording uses.
    pub fn stream_into(&self, tap: &TraceTap) {
        for chunk in &self.frozen {
            tap.send_chunk(Arc::clone(chunk));
        }
        if !self.current.is_empty() {
            tap.send_chunk(Arc::new(self.current.clone()));
        }
        tap.send_end(Arc::new(self.context.clone()));
    }
}

/// Recording sink: the trace consumes the post-L2 stream produced by
/// [`crate::stage::UpperLevels`] without simulating an LLC (demand requests
/// report a miss, which nothing above the LLC observes).
impl LlcSink for LlcTrace {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        self.push(info);
        false
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        self.push_prefetch(info);
    }

    fn writeback(&mut self, addr: Address) {
        self.push_writeback(addr);
    }

    fn push_batch(&mut self, addrs: &[Address], meta: &[u32]) {
        self.push_batch_raw(addrs, meta);
    }
}

impl FromIterator<AccessInfo> for LlcTrace {
    fn from_iter<I: IntoIterator<Item = AccessInfo>>(iter: I) -> Self {
        let mut trace = Self::new();
        for info in iter {
            trace.push(&info);
        }
        trace
    }
}

/// Default bound of the streaming chunk channel, in chunks per consumer.
/// Eight full chunks are ~6 MiB of records — the peak per-cell trace
/// footprint of a streaming replay, independent of trace length.
pub const DEFAULT_STREAM_DEPTH: usize = 8;

/// One item of the streaming chunk channel.
#[derive(Debug, Clone)]
pub enum StreamItem {
    /// A frozen chunk of the post-L2 stream, in stream order.
    Chunk(Arc<TraceChunk>),
    /// End of stream: the recording run's upper-level context, after which
    /// no more chunks follow.
    End(Arc<RecordContext>),
}

/// The producer half of a [`chunk_channel`]: broadcasts frozen chunks (and
/// the end-of-stream context) to every consumer. Sending blocks once a
/// consumer falls `depth` chunks behind, which is what bounds the pipeline's
/// memory.
#[derive(Debug)]
pub struct TraceTap {
    senders: Vec<SyncSender<StreamItem>>,
    chunk_records: usize,
}

impl TraceTap {
    fn broadcast(&self, item: StreamItem) {
        // A disconnected receiver means its consumer is gone (e.g. it
        // panicked and the scope is unwinding); dropping the send keeps the
        // recorder alive so the joins can report the real failure.
        let Some((last, rest)) = self.senders.split_last() else {
            return;
        };
        for sender in rest {
            let _ = sender.send(item.clone());
        }
        let _ = last.send(item);
    }

    /// Broadcasts one frozen chunk to every consumer.
    pub fn send_chunk(&self, chunk: Arc<TraceChunk>) {
        self.broadcast(StreamItem::Chunk(chunk));
    }

    /// Broadcasts the end-of-stream marker carrying the recorded context.
    pub fn send_end(&self, context: Arc<RecordContext>) {
        self.broadcast(StreamItem::End(context));
    }

    /// Records per chunk produced through this tap.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }
}

/// The consumer half of a [`chunk_channel`]: yields the stream items of one
/// consumer, in stream order.
#[derive(Debug)]
pub struct ChunkReceiver {
    inner: Receiver<StreamItem>,
}

impl ChunkReceiver {
    /// Receives the next stream item, blocking until the producer sends one.
    /// Returns `None` when the producer disconnected without an
    /// [`StreamItem::End`] marker (it panicked or was dropped mid-record).
    pub fn recv(&self) -> Option<StreamItem> {
        self.inner.recv().ok()
    }
}

/// Creates a bounded single-producer, multi-consumer chunk channel:
/// everything sent through the returned [`TraceTap`] is delivered to each of
/// the `consumers` receivers, and the producer blocks once any consumer is
/// `depth` chunks behind. Chunks hold [`CHUNK_RECORDS`] records.
pub fn chunk_channel(consumers: usize, depth: usize) -> (TraceTap, Vec<ChunkReceiver>) {
    chunk_channel_with(consumers, depth, CHUNK_RECORDS)
}

/// [`chunk_channel`] with an explicit chunk size (tests use tiny chunks to
/// exercise freeze boundaries without multi-million-record streams).
pub fn chunk_channel_with(
    consumers: usize,
    depth: usize,
    chunk_records: usize,
) -> (TraceTap, Vec<ChunkReceiver>) {
    assert!(depth > 0, "chunk channel depth must be positive");
    assert!(chunk_records > 0, "chunk size must be positive");
    let mut senders = Vec::with_capacity(consumers);
    let mut receivers = Vec::with_capacity(consumers);
    for _ in 0..consumers {
        let (sender, receiver) = sync_channel(depth);
        senders.push(sender);
        receivers.push(ChunkReceiver { inner: receiver });
    }
    (
        TraceTap {
            senders,
            chunk_records,
        },
        receivers,
    )
}

/// The streaming recorder: packs the post-L2 stream into frozen chunks and
/// broadcasts each completed chunk through its [`TraceTap`] instead of
/// retaining it — the producer end of the streaming record/replay pipeline.
/// Event encoding is identical to [`LlcTrace`], so a streamed replay is
/// bit-identical to a buffered one.
#[derive(Debug)]
pub struct TraceStreamer {
    current: TraceChunk,
    tap: TraceTap,
    len: usize,
    demand_len: usize,
}

impl TraceStreamer {
    /// Creates a streaming recorder producing into `tap`.
    pub fn new(tap: TraceTap) -> Self {
        Self {
            current: TraceChunk::with_capacity(tap.chunk_records()),
            tap,
            len: 0,
            demand_len: 0,
        }
    }

    #[inline]
    fn push_raw(&mut self, addr: Address, meta: u32) {
        self.current.push(addr, meta);
        self.len += 1;
        if self.current.len() == self.tap.chunk_records() {
            let full = std::mem::replace(
                &mut self.current,
                TraceChunk::with_capacity(self.tap.chunk_records()),
            );
            self.tap.send_chunk(Arc::new(full));
        }
    }

    /// Appends one demand record.
    #[inline]
    pub fn push(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, 0));
        self.demand_len += 1;
    }

    /// Appends one prefetch record.
    #[inline]
    pub fn push_prefetch(&mut self, info: &AccessInfo) {
        self.push_raw(info.addr, encode_meta(info, META_PREFETCH_BIT));
    }

    /// Appends one writeback record.
    #[inline]
    pub fn push_writeback(&mut self, addr: Address) {
        self.push_raw(addr, META_WRITEBACK_BIT);
    }

    /// Appends a flush marker.
    pub fn push_flush(&mut self) {
        self.push_raw(0, META_FLUSH_BIT);
    }

    /// Appends a whole flush-free record batch column-wise, broadcasting each
    /// chunk the batch completes (the streaming counterpart of
    /// [`LlcTrace::push_batch_raw`]; encoding and chunk boundaries are
    /// identical, so a streamed recording stays bit-identical to a buffered
    /// one).
    pub(crate) fn push_batch_raw(&mut self, addrs: &[Address], meta: &[u32]) {
        debug_assert_eq!(addrs.len(), meta.len(), "index-aligned columns");
        self.len += addrs.len();
        self.demand_len += count_demand_records(meta);
        let records = self.tap.chunk_records();
        let (mut addrs, mut meta) = (addrs, meta);
        while !addrs.is_empty() {
            let take = (records - self.current.len()).min(addrs.len());
            self.current.addrs.extend_from_slice(&addrs[..take]);
            self.current.meta.extend_from_slice(&meta[..take]);
            if self.current.len() == records {
                let full = std::mem::replace(&mut self.current, TraceChunk::with_capacity(records));
                self.tap.send_chunk(Arc::new(full));
            }
            addrs = &addrs[take..];
            meta = &meta[take..];
        }
    }

    /// Total number of events streamed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been streamed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of demand records streamed so far.
    pub fn demand_len(&self) -> usize {
        self.demand_len
    }

    /// Finishes the stream: flushes the in-progress chunk and broadcasts the
    /// end-of-stream marker carrying the recording run's context.
    pub fn finish(mut self, context: RecordContext) {
        if !self.current.is_empty() {
            let tail = std::mem::take(&mut self.current);
            self.tap.send_chunk(Arc::new(tail));
        }
        self.tap.send_end(Arc::new(context));
    }
}

/// Streaming-recording sink: like the [`LlcSink`] impl of [`LlcTrace`], the
/// streamer consumes the post-L2 stream without simulating an LLC.
impl LlcSink for TraceStreamer {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        self.push(info);
        false
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        self.push_prefetch(info);
    }

    fn writeback(&mut self, addr: Address) {
        self.push_writeback(addr);
    }

    fn push_batch(&mut self, addrs: &[Address], meta: &[u32]) {
        self.push_batch_raw(addrs, meta);
    }
}

/// The incremental, chunk-driven entry point to [`LlcStage`]: feed it trace
/// chunks as they arrive (from a [`ChunkReceiver`] or a buffered trace's
/// [`LlcTrace::chunks`]), then [`ChunkReplayer::finish`] with the recorded
/// context to obtain the full hierarchy statistics. Both
/// [`LlcTrace::replay`] and the streaming consumers drive this same type,
/// which is what pins streamed and buffered replay bit-for-bit to each
/// other (and to direct simulation).
///
/// [`ChunkReplayer::feed`] is the batched replay kernel: it splits the chunk
/// into maximal flush-free tiles (the flush bit of the metadata column is
/// scanned eight records per step), columnizes each tile's lookup work
/// (block, set index, SWAR partial-tag pattern) straight off the raw
/// address column, and drives the tile through the cache's **fused** mixed
/// batched kernel — each record is decoded in registers the moment the
/// policy-monomorphized loop consumes it, so no intermediate request buffer
/// is ever materialized. Kind changes do **not** break a tile: demand
/// and prefetch records interleave densely in recorded streams (median
/// same-kind run length is 1 on the paper workloads), so only flushes — rare,
/// whole-cache resets — fall back to the per-event scalar path. Tiles are
/// capped so the lookup columns stay cache-resident.
#[derive(Debug)]
pub struct ChunkReplayer {
    stage: LlcStage,
    reclassify: Option<RegionClassifier>,
    /// Reusable precomputed lookup columns of the batched kernel.
    scratch: BatchScratch,
}

impl ChunkReplayer {
    /// Creates a replayer driving a fresh [`LlcStage`] with the given
    /// geometry and policy.
    pub fn new(config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        Self {
            stage: LlcStage::new(config, policy),
            reclassify: None,
            scratch: BatchScratch::new(),
        }
    }

    /// Recomputes reuse hints with `classifier` during replay (LLC-size
    /// sweeps; see [`LlcTrace::replay_with_classifier`]).
    #[must_use]
    pub fn with_classifier(mut self, classifier: RegionClassifier) -> Self {
        self.reclassify = Some(classifier);
        self
    }

    #[inline]
    fn rehint(&self, info: AccessInfo) -> AccessInfo {
        match &self.reclassify {
            Some(classifier) => info.with_hint(classifier.classify(info.addr)),
            None => info,
        }
    }

    /// Replays one event.
    #[inline]
    pub fn feed_event(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Demand(info) => {
                self.stage.demand(&self.rehint(info));
            }
            TraceEvent::Prefetch(info) => {
                let info = self.rehint(info);
                self.stage.prefetch(&info);
            }
            TraceEvent::Writeback(addr) => self.stage.writeback(addr),
            TraceEvent::Flush => self.stage.flush(),
        }
    }

    /// Replays one chunk of the stream through the fused batched kernel (see
    /// the type docs). Bit-identical to [`ChunkReplayer::feed_scalar`].
    pub fn feed(&mut self, chunk: &TraceChunk) {
        let (addrs, meta) = chunk.columns();
        let reclassify = self.reclassify.as_ref();
        let mut offset = 0;
        while offset < meta.len() {
            if meta[offset] & META_FLUSH_BIT != 0 {
                self.stage.flush();
                offset += 1;
                continue;
            }
            // The flush-free scan is windowed to one tile so a long run is
            // not rescanned once per tile.
            let window = &meta[offset..meta.len().min(offset + BATCH_TILE)];
            let len = kind_run_len(window, 0, META_FLUSH_BIT);
            let tile_addrs = &addrs[offset..offset + len];
            let tile_meta = &window[..len];
            // Records decode in registers the moment the kernel consumes
            // them — no intermediate request buffer (see the type docs).
            // Writeback records decode like any other (the kernel only reads
            // their address), which keeps the decode branch-free.
            self.stage
                .replay_batch_fused(tile_addrs, &mut self.scratch, |i| {
                    let word = tile_meta[i];
                    let mut info = decode_info(tile_addrs[i], word);
                    if let Some(classifier) = reclassify {
                        info.hint = classifier.classify(info.addr);
                    }
                    let op = match (word >> META_PREFETCH_BIT.trailing_zeros()) & 0b11 {
                        0 => BatchOp::Demand,
                        1 => BatchOp::Prefetch,
                        _ => BatchOp::Writeback,
                    };
                    (info, op)
                });
            offset += len;
        }
    }

    /// Replays one chunk event-by-event through [`ChunkReplayer::feed_event`]
    /// — the reference path the batched [`ChunkReplayer::feed`] is pinned
    /// against (property tests, the micro_replay batched-replay table).
    pub fn feed_scalar(&mut self, chunk: &TraceChunk) {
        for event in chunk.events() {
            self.feed_event(event);
        }
    }

    /// Consumes the replayer and assembles the full hierarchy statistics:
    /// the recorded upper-level stats plus the replayed LLC stats.
    pub fn finish(self, context: &RecordContext) -> HierarchyStats {
        HierarchyStats {
            l1: context.l1.clone(),
            l2: context.l2.clone(),
            memory_accesses: self.stage.memory_accesses(),
            llc: self.stage.into_stats(),
        }
    }
}

/// Replays one recorded stream through **several** policies in a single
/// pass over the chunks: each flush-free tile is decoded column-wise once
/// into shared request/op buffers, then consumed by every policy's stage
/// through the batched kernel. The per-event path has nowhere to park a
/// decoded tile, so it pays the decode once *per policy* — amortizing it
/// across the fan-out is structural headroom only batch replay can reach,
/// and policy sweeps (the paper's Table VI shape) are exactly where replay
/// time concentrates. Per stage, the result is bit-identical to a
/// standalone [`ChunkReplayer`] fed the same chunk sequence.
#[derive(Debug)]
pub struct FanoutReplayer {
    stages: Vec<LlcStage>,
    reclassify: Option<RegionClassifier>,
    /// Shared decoded-tile buffer, written once per tile, read per stage.
    infos: Vec<AccessInfo>,
    /// Shared per-record request kinds of the decoded tile.
    ops: Vec<BatchOp>,
    /// Reusable precomputed lookup columns of the batched kernel.
    scratch: BatchScratch,
}

impl FanoutReplayer {
    /// Creates a replayer driving one fresh [`LlcStage`] per policy, all
    /// with the same geometry.
    pub fn new<P: Into<PolicyDispatch>>(
        config: CacheConfig,
        policies: impl IntoIterator<Item = P>,
    ) -> Self {
        Self {
            stages: policies
                .into_iter()
                .map(|policy| LlcStage::new(config, policy))
                .collect(),
            reclassify: None,
            infos: Vec::new(),
            ops: Vec::new(),
            scratch: BatchScratch::new(),
        }
    }

    /// Recomputes reuse hints with `classifier` during replay (LLC-size
    /// sweeps; see [`LlcTrace::replay_with_classifier`]).
    #[must_use]
    pub fn with_classifier(mut self, classifier: RegionClassifier) -> Self {
        self.reclassify = Some(classifier);
        self
    }

    /// Decodes one flush-free tile column-wise into the shared buffers and
    /// applies the optional hint reclassification as a second pass.
    /// Writeback records decode like any other (the kernel only reads their
    /// address), which keeps the decode loop branch-free.
    fn decode_tile(&mut self, addrs: &[Address], meta: &[u32]) {
        self.infos.clear();
        self.infos.extend(
            addrs
                .iter()
                .zip(meta)
                .map(|(&addr, &word)| decode_info(addr, word)),
        );
        self.ops.clear();
        self.ops.extend(meta.iter().map(|&word| {
            match (word >> META_PREFETCH_BIT.trailing_zeros()) & 0b11 {
                0 => BatchOp::Demand,
                1 => BatchOp::Prefetch,
                _ => BatchOp::Writeback,
            }
        }));
        if let Some(classifier) = &self.reclassify {
            for info in &mut self.infos {
                info.hint = classifier.classify(info.addr);
            }
        }
    }

    /// Replays one chunk into every stage, decoding each flush-free run
    /// once. Unlike [`ChunkReplayer::feed`], runs are **not** capped at the
    /// kernel tile size: each stage should process as long a contiguous
    /// stretch as possible per visit so its simulated-cache arrays stay
    /// warm in the host cache between accesses — interleaving the stages at
    /// fine grain makes them evict each other. The decoded buffers exceed
    /// the host cache for a full chunk, but they are re-read sequentially
    /// (prefetcher-friendly), while the per-stage lookup columns are still
    /// tiled cache-resident inside [`SetAssocCache::replay_batch`].
    pub fn feed(&mut self, chunk: &TraceChunk) {
        if self.stages.is_empty() {
            return;
        }
        let (addrs, meta) = chunk.columns();
        let mut offset = 0;
        while offset < meta.len() {
            if meta[offset] & META_FLUSH_BIT != 0 {
                for stage in &mut self.stages {
                    stage.flush();
                }
                offset += 1;
                continue;
            }
            let window = &meta[offset..];
            let len = kind_run_len(window, 0, META_FLUSH_BIT);
            self.decode_tile(&addrs[offset..offset + len], &window[..len]);
            // All stages share the geometry, so the lookup columns are
            // prepared once (on the first stage) for the whole fan-out.
            self.stages[0].prepare_batch(&self.infos, &mut self.scratch);
            for stage in &mut self.stages {
                stage.replay_batch_prepared(&self.infos, &self.ops, &self.scratch);
            }
            offset += len;
        }
    }

    /// Consumes the replayer and assembles per-policy hierarchy statistics,
    /// in the order the policies were given to [`FanoutReplayer::new`].
    pub fn finish(self, context: &RecordContext) -> Vec<HierarchyStats> {
        self.stages
            .into_iter()
            .map(|stage| HierarchyStats {
                l1: context.l1.clone(),
                l2: context.l2.clone(),
                memory_accesses: stage.memory_accesses(),
                llc: stage.into_stats(),
            })
            .collect()
    }
}

/// Drives a group of [`ChunkReplayer`]s from one [`ChunkReceiver`] until the
/// end-of-stream marker arrives, then finishes each replayer with the
/// received context. Every chunk is fed to every replayer, so one consumer
/// thread can serve several policies of a sweep.
///
/// # Panics
///
/// Panics when the producer disconnects without an end-of-stream marker
/// (the recording side panicked or was dropped mid-record).
pub fn replay_stream(
    receiver: &ChunkReceiver,
    mut replayers: Vec<ChunkReplayer>,
) -> Vec<HierarchyStats> {
    loop {
        match receiver.recv() {
            Some(StreamItem::Chunk(chunk)) => {
                for replayer in &mut replayers {
                    replayer.feed(&chunk);
                }
            }
            Some(StreamItem::End(context)) => {
                return replayers
                    .into_iter()
                    .map(|replayer| replayer.finish(&context))
                    .collect();
            }
            None => panic!("trace stream ended without an end-of-stream marker"),
        }
    }
}

/// Replays a demand-access trace through a standalone LLC with the given
/// policy and returns the resulting statistics (synthetic-trace workflows;
/// recorded runs should prefer [`LlcTrace::replay`]). The trace is driven
/// through the batched cache kernel in chunk-sized windows, which bounds the
/// precomputed-column scratch to one chunk regardless of trace length.
pub fn replay(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    let mut scratch = BatchScratch::new();
    for window in trace.chunks(CHUNK_RECORDS) {
        cache.access_batch(window, &mut scratch);
    }
    cache.stats().clone()
}

/// Replays a demand-access trace with reuse hints *recomputed* by
/// `classifier` (LLC-size sweeps over synthetic or decoded traces; recorded
/// traces should prefer [`LlcTrace::replay_demand_with_classifier`], which
/// feeds the same loop straight off the chunked storage).
pub fn replay_with_classifier(
    trace: &[AccessInfo],
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
    classifier: &RegionClassifier,
) -> CacheStats {
    replay_demand_reclassified(trace.iter().copied(), config, policy, classifier)
}

/// The one demand-only reclassifying replay loop both the slice and the
/// chunk-native entry points share, so their hint semantics can never
/// diverge. The stream is reclassified into a chunk-sized window and driven
/// through the batched cache kernel window by window.
fn replay_demand_reclassified(
    demands: impl Iterator<Item = AccessInfo>,
    config: CacheConfig,
    policy: impl Into<PolicyDispatch>,
    classifier: &RegionClassifier,
) -> CacheStats {
    let mut cache = SetAssocCache::new("LLC", config, policy);
    let mut scratch = BatchScratch::new();
    let mut window = Vec::new();
    let mut demands = demands.map(|info| info.with_hint(classifier.classify(info.addr)));
    loop {
        window.clear();
        window.extend(demands.by_ref().take(CHUNK_RECORDS));
        if window.is_empty() {
            break;
        }
        cache.access_batch(&window, &mut scratch);
    }
    cache.stats().clone()
}

/// Percentage of misses eliminated by `candidate` relative to `baseline`
/// (positive = fewer misses). This is the metric of Figs. 5 and 11.
pub fn misses_eliminated_pct(baseline_misses: u64, candidate_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (baseline_misses as f64 - candidate_misses as f64) / baseline_misses as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::{AddressBoundRegisters, ReuseHint};
    use crate::policy::grasp::Grasp;
    use crate::policy::lru::Lru;
    use crate::policy::opt::optimal_misses;
    use crate::policy::rrip::Drrip;
    use crate::request::RegionLabel;

    /// A thrash-prone trace: a hot working set that fits in the cache plus a
    /// long stream of single-use blocks.
    fn thrashy_trace(hot_blocks: u64, cold_blocks: u64, rounds: u64) -> Vec<AccessInfo> {
        let mut trace = Vec::new();
        for r in 0..rounds {
            for b in 0..hot_blocks {
                trace.push(
                    AccessInfo::read(b * 64)
                        .with_hint(ReuseHint::High)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
            for c in 0..cold_blocks {
                let addr = (hot_blocks + r * cold_blocks + c) * 64;
                trace.push(
                    AccessInfo::read(addr)
                        .with_hint(ReuseHint::Low)
                        .with_region(RegionLabel::Property)
                        .with_site(1),
                );
            }
        }
        trace
    }

    fn llc_config() -> CacheConfig {
        CacheConfig::new(64 * 256, 16, 64) // 256 blocks, 16 ways
    }

    #[test]
    fn grasp_beats_lru_and_rrip_on_thrashy_traces() {
        let config = llc_config();
        // Hot set of 128 blocks (fits) + 512 cold blocks per round.
        let trace = thrashy_trace(128, 512, 20);
        let lru = replay(
            &trace,
            config,
            Box::new(Lru::new(config.sets(), config.ways)),
        );
        let rrip = replay(
            &trace,
            config,
            Box::new(Drrip::new(config.sets(), config.ways, 1)),
        );
        let grasp = replay(
            &trace,
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
        );
        assert!(
            grasp.misses < lru.misses,
            "grasp {} should beat lru {}",
            grasp.misses,
            lru.misses
        );
        assert!(
            grasp.misses <= rrip.misses,
            "grasp {} should not lose to rrip {}",
            grasp.misses,
            rrip.misses
        );
    }

    #[test]
    fn opt_lower_bounds_every_online_policy() {
        let config = llc_config();
        let trace = thrashy_trace(64, 300, 10);
        let opt = optimal_misses(&trace, &config);
        for policy in [
            replay(
                &trace,
                config,
                Box::new(Lru::new(config.sets(), config.ways)),
            ),
            replay(
                &trace,
                config,
                Box::new(Drrip::new(config.sets(), config.ways, 1)),
            ),
            replay(
                &trace,
                config,
                Box::new(Grasp::new(config.sets(), config.ways, 1)),
            ),
        ] {
            assert!(opt.misses <= policy.misses);
        }
    }

    fn chunk_test_demand(i: usize) -> AccessInfo {
        AccessInfo::read(i as u64 * 64)
            .with_site((i % 100) as u16)
            .with_region(RegionLabel::ALL[i % 5])
    }

    fn chunk_test_prefetch(i: usize) -> AccessInfo {
        AccessInfo::read(i as u64 * 64 + 8).with_hint(ReuseHint::High)
    }

    fn chunk_test_push(sink: &mut LlcTrace, i: usize) {
        match i % 3 {
            0 => sink.push(&chunk_test_demand(i)),
            1 => sink.push_prefetch(&chunk_test_prefetch(i)),
            _ => sink.push_writeback(i as u64 * 64),
        }
    }

    fn chunk_test_encoded(i: usize) -> (Address, u32) {
        match i % 3 {
            0 => (
                chunk_test_demand(i).addr,
                encode_meta(&chunk_test_demand(i), 0),
            ),
            1 => (
                chunk_test_prefetch(i).addr,
                encode_meta(&chunk_test_prefetch(i), META_PREFETCH_BIT),
            ),
            _ => (i as u64 * 64, META_WRITEBACK_BIT),
        }
    }

    #[test]
    fn bulk_appends_straddle_chunk_boundaries_exactly() {
        // A batch that crosses the frozen-chunk boundary must split exactly
        // like per-event pushes: same frozen/current layout, same counters.
        let total = CHUNK_RECORDS + 11;
        let mut reference = LlcTrace::new();
        for i in 0..total {
            chunk_test_push(&mut reference, i);
        }
        let mut bulk = LlcTrace::new();
        let batch_start = CHUNK_RECORDS - 5;
        for i in 0..batch_start {
            chunk_test_push(&mut bulk, i);
        }
        let (addrs, meta): (Vec<Address>, Vec<u32>) =
            (batch_start..total).map(chunk_test_encoded).unzip();
        bulk.push_batch_raw(&addrs, &meta);
        assert_eq!(reference, bulk);
        assert_eq!(reference.demand_len(), bulk.demand_len());
        assert_eq!(bulk.len(), total);
        let chunk_lens: Vec<usize> = bulk.chunks().map(TraceChunk::len).collect();
        assert_eq!(chunk_lens, vec![CHUNK_RECORDS, 11]);
    }

    #[test]
    fn bulk_appends_top_up_a_short_reservation_without_doubling() {
        // A trace pre-sized by a short estimate must grow toward the fixed
        // chunk extent with exact reservations, never a `Vec` doubling past
        // it.
        let mut trace = LlcTrace::new();
        trace.reserve(100);
        let records = 5000usize;
        let (addrs, meta): (Vec<Address>, Vec<u32>) = (0..records).map(chunk_test_encoded).unzip();
        trace.push_batch_raw(&addrs, &meta);
        assert_eq!(trace.len(), records);
        assert!(
            trace.current.addrs.capacity() <= CHUNK_RECORDS,
            "bulk append must not allocate past the chunk extent (capacity {})",
            trace.current.addrs.capacity()
        );
    }

    #[test]
    fn streamed_bulk_appends_chunk_identically_to_per_event_pushes() {
        let collect = |rx: &ChunkReceiver| {
            let mut chunks = Vec::new();
            while let Some(item) = rx.recv() {
                match item {
                    StreamItem::Chunk(chunk) => chunks.push(chunk),
                    StreamItem::End(_) => break,
                }
            }
            chunks
        };
        let total = 77usize;
        // Tiny 32-record chunks; few enough that the bounded channel never
        // blocks a single-threaded test.
        let (tap, receivers) = chunk_channel_with(1, 64, 32);
        let mut per_event = TraceStreamer::new(tap);
        for i in 0..total {
            chunk_test_push_streamer(&mut per_event, i);
        }
        per_event.finish(RecordContext::default());
        let expected = collect(&receivers[0]);

        let (tap, receivers) = chunk_channel_with(1, 64, 32);
        let mut bulk = TraceStreamer::new(tap);
        for i in 0..10 {
            chunk_test_push_streamer(&mut bulk, i);
        }
        let (addrs, meta): (Vec<Address>, Vec<u32>) = (10..total).map(chunk_test_encoded).unzip();
        bulk.push_batch_raw(&addrs, &meta);
        assert_eq!(bulk.len(), total);
        assert_eq!(bulk.demand_len(), total.div_ceil(3));
        bulk.finish(RecordContext::default());
        let got = collect(&receivers[0]);
        assert_eq!(expected.len(), got.len());
        for (a, b) in expected.iter().zip(&got) {
            assert_eq!(a.as_ref(), b.as_ref());
        }
    }

    fn chunk_test_push_streamer(sink: &mut TraceStreamer, i: usize) {
        match i % 3 {
            0 => sink.push(&chunk_test_demand(i)),
            1 => sink.push_prefetch(&chunk_test_prefetch(i)),
            _ => sink.push_writeback(i as u64 * 64),
        }
    }

    #[test]
    fn llc_trace_round_trips_every_field() {
        let infos = [
            AccessInfo::read(0x1234)
                .with_site(77)
                .with_hint(ReuseHint::High)
                .with_region(RegionLabel::EdgeArray),
            AccessInfo::write(u64::MAX - 63)
                .with_site(u16::MAX)
                .with_hint(ReuseHint::Moderate)
                .with_region(RegionLabel::Frontier),
            AccessInfo::read(0),
        ];
        let mut trace = LlcTrace::with_capacity(infos.len());
        for info in &infos {
            trace.push(info);
        }
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.demand_len(), 3);
        for (i, expected) in infos.iter().enumerate() {
            assert_eq!(trace.get(i), TraceEvent::Demand(*expected));
        }
        assert_eq!(trace.demand_vec(), infos.to_vec());
        let rebuilt: LlcTrace = trace.demand_accesses().collect();
        assert_eq!(rebuilt, trace);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let demand = AccessInfo::write(0x40)
            .with_site(9)
            .with_hint(ReuseHint::Low)
            .with_region(RegionLabel::Property);
        let prefetch = AccessInfo::read(0x80)
            .with_site(9)
            .with_hint(ReuseHint::Moderate)
            .with_region(RegionLabel::EdgeArray);
        let mut trace = LlcTrace::new();
        trace.push(&demand);
        trace.push_prefetch(&prefetch);
        trace.push_writeback(0xFFC0);
        trace.push_flush();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.demand_len(), 1);
        assert_eq!(
            trace.to_vec(),
            vec![
                TraceEvent::Demand(demand),
                TraceEvent::Prefetch(prefetch),
                TraceEvent::Writeback(0xFFC0),
                TraceEvent::Flush,
            ]
        );
        assert_eq!(trace.demand_vec(), vec![demand]);
    }

    #[test]
    fn chunked_storage_preserves_order_across_boundaries() {
        let mut trace = LlcTrace::new();
        let total = CHUNK_RECORDS + CHUNK_RECORDS / 2;
        for i in 0..total {
            trace.push(&AccessInfo::read(i as u64 * 64).with_site((i % 7) as u16));
        }
        assert_eq!(trace.len(), total);
        // Spot-check around the chunk boundary plus random access deep in.
        for i in [
            0,
            CHUNK_RECORDS - 1,
            CHUNK_RECORDS,
            CHUNK_RECORDS + 1,
            total - 1,
        ] {
            match trace.get(i) {
                TraceEvent::Demand(info) => {
                    assert_eq!(info.addr, i as u64 * 64);
                    assert_eq!(info.site, (i % 7) as u16);
                }
                other => panic!("expected demand at {i}, got {other:?}"),
            }
        }
        assert_eq!(trace.iter().count(), total);
    }

    #[test]
    fn capacity_estimate_scales_and_caps() {
        assert_eq!(LlcTrace::estimate_capacity(1000, 4), 1000);
        // Zero iterations are clamped to one traced iteration.
        assert_eq!(LlcTrace::estimate_capacity(1000, 0), 250);
        assert_eq!(
            LlcTrace::estimate_capacity(u64::MAX / 8, 2),
            1 << 22,
            "estimate must stay capped for huge runs"
        );
    }

    #[test]
    fn misses_eliminated_pct_math() {
        assert!((misses_eliminated_pct(100, 80) - 20.0).abs() < 1e-12);
        assert!((misses_eliminated_pct(100, 120) + 20.0).abs() < 1e-12);
        assert_eq!(misses_eliminated_pct(0, 10), 0.0);
    }

    #[test]
    fn trace_replay_reports_full_hierarchy_stats() {
        let mut trace: LlcTrace = thrashy_trace(32, 128, 4).into_iter().collect();
        let mut context = RecordContext::default();
        context.l1.record(RegionLabel::Property, false);
        context.l2.record(RegionLabel::Property, false);
        trace.set_context(context);
        let config = llc_config();
        let stats = trace.replay(config, Box::new(Lru::new(config.sets(), config.ways)));
        assert_eq!(stats.l1.accesses, 1, "recorded upper stats are carried");
        assert_eq!(stats.llc.accesses as usize, trace.demand_len());
        assert_eq!(stats.memory_accesses, stats.llc.misses);
    }

    #[test]
    fn streamed_replay_matches_buffered_replay() {
        let trace: LlcTrace = thrashy_trace(32, 200, 6).into_iter().collect();
        let config = llc_config();
        let buffered = trace.replay(config, Box::new(Lru::new(config.sets(), config.ways)));

        // Tiny chunks force freeze boundaries; the depth is generous enough
        // to re-broadcast the whole trace without a consumer thread.
        let records = trace.len();
        let (tap, receivers) = chunk_channel_with(1, records.div_ceil(5) + 2, 5);
        let mut streamer = TraceStreamer::new(tap);
        for event in trace.iter() {
            match event {
                TraceEvent::Demand(info) => streamer.push(&info),
                TraceEvent::Prefetch(info) => streamer.push_prefetch(&info),
                TraceEvent::Writeback(addr) => streamer.push_writeback(addr),
                TraceEvent::Flush => streamer.push_flush(),
            }
        }
        assert_eq!(streamer.len(), records);
        streamer.finish(trace.context().clone());

        let replayer = ChunkReplayer::new(config, Box::new(Lru::new(config.sets(), config.ways)));
        let streamed = replay_stream(&receivers[0], vec![replayer]);
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0], buffered);
    }

    #[test]
    fn stream_into_rebroadcasts_a_buffered_trace_to_many_consumers() {
        let trace: LlcTrace = thrashy_trace(16, 64, 3).into_iter().collect();
        let config = llc_config();
        let consumers = 3;
        let (tap, receivers) = chunk_channel(consumers, DEFAULT_STREAM_DEPTH);
        trace.stream_into(&tap);
        for receiver in &receivers {
            let replayer =
                ChunkReplayer::new(config, Box::new(Lru::new(config.sets(), config.ways)));
            let streamed = replay_stream(receiver, vec![replayer]);
            let buffered = trace.replay(config, Box::new(Lru::new(config.sets(), config.ways)));
            assert_eq!(streamed[0], buffered);
        }
    }

    #[test]
    fn bounded_channel_applies_backpressure_across_threads() {
        // A depth-1 channel with chunk size 4: the producer must block until
        // the consumer drains, and every record still arrives in order.
        let events: Vec<AccessInfo> = (0..257u64).map(|i| AccessInfo::read(i * 64)).collect();
        let config = llc_config();
        let expected: LlcTrace = events.iter().copied().collect();
        let expected = expected.replay(config, Box::new(Lru::new(config.sets(), config.ways)));

        let (tap, mut receivers) = chunk_channel_with(2, 1, 4);
        let receiver_a = receivers.remove(0);
        let receiver_b = receivers.remove(0);
        let stats = std::thread::scope(|scope| {
            let consume = |receiver: ChunkReceiver| {
                scope.spawn(move || {
                    let replayer =
                        ChunkReplayer::new(config, Box::new(Lru::new(config.sets(), config.ways)));
                    replay_stream(&receiver, vec![replayer]).remove(0)
                })
            };
            let a = consume(receiver_a);
            let b = consume(receiver_b);
            let mut streamer = TraceStreamer::new(tap);
            for info in &events {
                streamer.push(info);
            }
            streamer.finish(RecordContext::default());
            (a.join().expect("consumer a"), b.join().expect("consumer b"))
        });
        assert_eq!(stats.0, expected);
        assert_eq!(stats.1, expected);
    }

    #[test]
    fn cloning_a_trace_shares_frozen_chunks() {
        let mut trace = LlcTrace::new();
        for i in 0..(CHUNK_RECORDS + 10) {
            trace.push(&AccessInfo::read(i as u64 * 64));
        }
        let clone = trace.clone();
        assert_eq!(clone, trace);
        assert!(
            Arc::ptr_eq(&trace.frozen[0], &clone.frozen[0]),
            "frozen chunks must be shared, not copied"
        );
    }

    #[test]
    fn chunk_native_demand_replay_matches_the_slice_version() {
        let demands = thrashy_trace(48, 256, 5);
        let mut trace = LlcTrace::new();
        for (i, info) in demands.iter().enumerate() {
            trace.push(info);
            if i % 9 == 0 {
                trace.push_writeback(info.addr); // must be skipped by the demand view
            }
        }
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0, 1 << 20);
        let classifier = RegionClassifier::new(abrs, 128 * 1024);
        let config = llc_config();
        let sliced = replay_with_classifier(
            &demands,
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
            &classifier,
        );
        let chunked = trace.replay_demand_with_classifier(
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
            &classifier,
        );
        assert_eq!(sliced, chunked);
    }

    #[test]
    fn reclassification_changes_hints_with_llc_size() {
        // Record hints for a small LLC, then replay for a larger one: more of
        // the property array becomes High-Reuse.
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0, 1024 * 1024);
        let small = RegionClassifier::new(abrs.clone(), 64 * 1024);
        let large = RegionClassifier::new(abrs, 256 * 1024);
        let addr = 128 * 1024; // past the small High region, inside the large one
        assert_eq!(small.classify(addr), ReuseHint::Low);
        assert_eq!(large.classify(addr), ReuseHint::High);

        let trace: LlcTrace = [AccessInfo::read(addr).with_hint(small.classify(addr))]
            .into_iter()
            .collect();
        let config = llc_config();
        let stats = trace.replay_with_classifier(
            config,
            Box::new(Grasp::new(config.sets(), config.ways, 1)),
            &large,
        );
        assert_eq!(stats.llc.accesses, 1);
    }
}
