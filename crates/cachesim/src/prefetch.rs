//! A simple stride prefetcher (Table VI: "stride-based prefetchers with 16
//! streams" at the L1-D).
//!
//! Each stream is keyed by the access site. When a site issues accesses with a
//! stable stride, the prefetcher predicts the next block. Streaming structures
//! of graph analytics (the Vertex and Edge arrays) exhibit unit strides and
//! benefit; the irregular Property Array accesses never establish a stable
//! stride and are left alone — exactly the behaviour the paper relies on when
//! it notes that prefetchers do not help the Property Array.

use crate::addr::Address;
use crate::request::AccessSite;

/// State of a single prefetch stream.
#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    site: AccessSite,
    last_addr: Address,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A site-keyed stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    confidence_threshold: u8,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `streams` stream slots (16 in Table VI).
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(streams: usize) -> Self {
        assert!(streams > 0, "streams must be non-zero");
        Self {
            streams: vec![Stream::default(); streams],
            confidence_threshold: 2,
        }
    }

    /// Observes a demand access and returns the predicted next address when
    /// the stream has a confident, stable stride.
    pub fn observe(&mut self, site: AccessSite, addr: Address) -> Option<Address> {
        let slot = self.find_or_allocate(site);
        self.observe_in_slot(slot, site, addr)
    }

    /// [`StridePrefetcher::observe`] with a memoized stream slot: `slot_hint`
    /// carries the slot of the previous call, skipping the stream scan when
    /// consecutive accesses come from the same site (the common case in the
    /// scan-heavy record stream). Exact because valid streams have unique
    /// sites — a hint that still names a valid stream for `site` is the slot
    /// the scan would find. Seed the hint with `usize::MAX`.
    pub fn observe_with_hint(
        &mut self,
        site: AccessSite,
        addr: Address,
        slot_hint: &mut usize,
    ) -> Option<Address> {
        let slot = match self.streams.get(*slot_hint) {
            Some(s) if s.valid && s.site == site => *slot_hint,
            _ => self.find_or_allocate(site),
        };
        *slot_hint = slot;
        self.observe_in_slot(slot, site, addr)
    }

    #[inline]
    fn observe_in_slot(&mut self, slot: usize, site: AccessSite, addr: Address) -> Option<Address> {
        let stream = &mut self.streams[slot];
        if !stream.valid || stream.site != site {
            *stream = Stream {
                site,
                last_addr: addr,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return None;
        }
        let stride = addr as i64 - stream.last_addr as i64;
        if stride != 0 && stride == stream.stride {
            stream.confidence = stream.confidence.saturating_add(1);
        } else {
            stream.stride = stride;
            stream.confidence = 0;
        }
        stream.last_addr = addr;
        if stream.confidence >= self.confidence_threshold && stream.stride != 0 {
            let next = addr as i64 + stream.stride;
            if next >= 0 {
                return Some(next as Address);
            }
        }
        None
    }

    /// Observes a whole demand column in one pass, appending one prediction
    /// slot per access to `predictions` (cleared first). The prefetcher is a
    /// pure function of the observed `(site, addr)` sequence — issued
    /// prefetches are never observed and no cache outcome feeds back — so
    /// the batched record kernel can compute every tile's predictions up
    /// front, identical to interleaved [`StridePrefetcher::observe`] calls.
    pub fn observe_batch(
        &mut self,
        accesses: &[crate::request::AccessInfo],
        predictions: &mut Vec<Option<Address>>,
    ) {
        predictions.clear();
        predictions.extend(
            accesses
                .iter()
                .map(|access| self.observe(access.site, access.addr)),
        );
    }

    /// Clears every stream (used between experiment phases so no stride
    /// training survives a hierarchy flush).
    pub fn reset(&mut self) {
        self.streams.fill(Stream::default());
    }

    fn find_or_allocate(&mut self, site: AccessSite) -> usize {
        if let Some(idx) = self.streams.iter().position(|s| s.valid && s.site == site) {
            return idx;
        }
        if let Some(idx) = self.streams.iter().position(|s| !s.valid) {
            return idx;
        }
        // Evict the stream with the lowest confidence.
        self.streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.confidence)
            .map(|(i, _)| i)
            .expect("streams is non-empty")
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut p = StridePrefetcher::new(4);
        assert_eq!(p.observe(1, 0), None);
        assert_eq!(p.observe(1, 64), None);
        assert_eq!(p.observe(1, 128), None);
        // Confidence reached: predict the next block.
        assert_eq!(p.observe(1, 192), Some(256));
        assert_eq!(p.observe(1, 256), Some(320));
    }

    #[test]
    fn irregular_stream_never_prefetches() {
        let mut p = StridePrefetcher::new(4);
        let addrs = [0u64, 4096, 64, 8192, 128, 73, 9999];
        for &a in &addrs {
            assert_eq!(
                p.observe(2, a),
                None,
                "irregular accesses must not prefetch"
            );
        }
    }

    #[test]
    fn streams_are_independent_per_site() {
        let mut p = StridePrefetcher::new(4);
        for i in 0..4u64 {
            p.observe(1, i * 64);
            p.observe(2, i * 128);
        }
        assert_eq!(p.observe(1, 256), Some(320));
        assert_eq!(p.observe(2, 512), Some(640));
    }

    #[test]
    fn stream_eviction_when_full() {
        let mut p = StridePrefetcher::new(2);
        // Train two confident streams.
        for i in 0..5u64 {
            p.observe(1, i * 64);
            p.observe(2, i * 64);
        }
        // A third site steals the least-confident slot without panicking.
        assert_eq!(p.observe(3, 0), None);
        assert_eq!(p.observe(3, 64), None);
    }

    #[test]
    #[should_panic(expected = "streams must be non-zero")]
    fn zero_streams_panics() {
        let _ = StridePrefetcher::new(0);
    }

    #[test]
    fn batched_observation_matches_interleaved_observe_calls() {
        use crate::request::AccessInfo;
        let accesses: Vec<AccessInfo> = (0..200u64)
            .map(|i| {
                let site = (i % 3) as AccessSite;
                let addr = match site {
                    0 => i * 64,         // unit stride: trains
                    1 => (i * i) % 4096, // irregular: never trains
                    _ => 1 << 20,        // constant: zero stride
                };
                AccessInfo::read(addr).with_site(site)
            })
            .collect();
        let mut scalar = StridePrefetcher::new(4);
        let expected: Vec<Option<Address>> = accesses
            .iter()
            .map(|a| scalar.observe(a.site, a.addr))
            .collect();
        let mut batched = StridePrefetcher::new(4);
        let mut predictions = Vec::new();
        let mut got = Vec::new();
        for tile in accesses.chunks(33) {
            batched.observe_batch(tile, &mut predictions);
            got.extend_from_slice(&predictions);
        }
        assert_eq!(expected, got);
        assert!(expected.iter().any(Option::is_some), "stream must train");
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(4);
        for i in (4..10u64).rev() {
            p.observe(5, i * 64);
        }
        let next = p.observe(5, 3 * 64);
        assert_eq!(next, Some(2 * 64));
    }
}
