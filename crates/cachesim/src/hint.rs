//! GRASP's software–hardware interface: reuse hints, Address Bound Registers
//! and the region classification logic (Sec. III-A and III-B of the paper).

use crate::addr::Address;
use serde::{Deserialize, Serialize};

/// The 2-bit reuse hint GRASP forwards to the LLC with every cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReuseHint {
    /// The access falls in the High Reuse Region (the LLC-sized prefix of a
    /// Property Array holding the hottest vertices).
    High,
    /// The access falls in the Moderate Reuse Region (the next LLC-sized
    /// chunk of a Property Array).
    Moderate,
    /// Any other access made by a graph application with programmed ABRs
    /// (the long cold tail of the Property Array, Vertex/Edge arrays, ...).
    Low,
    /// The ABRs are not programmed (non-graph applications) — specialized
    /// management is disabled and the base policy behaviour applies.
    #[default]
    Default,
}

impl ReuseHint {
    /// Encodes the hint as the 2-bit value carried with an LLC request.
    pub fn encode(self) -> u8 {
        match self {
            ReuseHint::High => 0,
            ReuseHint::Moderate => 1,
            ReuseHint::Low => 2,
            ReuseHint::Default => 3,
        }
    }

    /// Decodes a 2-bit value into a hint.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    pub fn decode(bits: u8) -> Self {
        match bits {
            0 => ReuseHint::High,
            1 => ReuseHint::Moderate,
            2 => ReuseHint::Low,
            3 => ReuseHint::Default,
            _ => panic!("reuse hint is a 2-bit value, got {bits}"),
        }
    }
}

impl std::fmt::Display for ReuseHint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReuseHint::High => "high-reuse",
            ReuseHint::Moderate => "moderate-reuse",
            ReuseHint::Low => "low-reuse",
            ReuseHint::Default => "default",
        };
        f.write_str(s)
    }
}

/// One pair of Address Bound Registers: the start and end virtual address of
/// a Property Array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundPair {
    /// Inclusive start address of the Property Array.
    pub start: Address,
    /// Exclusive end address of the Property Array.
    pub end: Address,
}

impl BoundPair {
    /// Creates a bound pair.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Address, end: Address) -> Self {
        assert!(end >= start, "end must not precede start");
        Self { start, end }
    }

    /// Length of the bounded region in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the region is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` falls inside the region.
    #[inline]
    pub fn contains(&self, addr: Address) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// The architectural register file GRASP exposes to software: a small number
/// of [`BoundPair`]s, one per Property Array (Sec. III-A).
///
/// The registers are part of the application context; when no pair is
/// programmed, classification returns [`ReuseHint::Default`] for every
/// address, disabling specialized management.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressBoundRegisters {
    pairs: Vec<BoundPair>,
}

/// Maximum number of ABR pairs the hardware provides. The paper instruments
/// at most two Property Arrays per application; commodity implementations
/// would provision a handful of registers.
pub const MAX_ABR_PAIRS: usize = 8;

impl AddressBoundRegisters {
    /// Creates an empty (unprogrammed) register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs one ABR pair with the bounds of a Property Array.
    ///
    /// # Panics
    ///
    /// Panics if all [`MAX_ABR_PAIRS`] registers are already programmed.
    pub fn program(&mut self, start: Address, end: Address) {
        assert!(
            self.pairs.len() < MAX_ABR_PAIRS,
            "all {MAX_ABR_PAIRS} ABR pairs are in use"
        );
        self.pairs.push(BoundPair::new(start, end));
    }

    /// Clears every register (application teardown).
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Returns `true` if at least one pair is programmed.
    pub fn is_programmed(&self) -> bool {
        !self.pairs.is_empty()
    }

    /// Number of programmed pairs.
    pub fn programmed_count(&self) -> usize {
        self.pairs.len()
    }

    /// The programmed pairs.
    pub fn pairs(&self) -> &[BoundPair] {
        &self.pairs
    }
}

/// The classification logic of GRASP (Sec. III-B): given the programmed ABRs
/// and the LLC capacity, labels every address as High-, Moderate-, Low-Reuse
/// or Default.
///
/// The LLC-sized region at the start of each Property Array is the High Reuse
/// Region; the next LLC-sized region is the Moderate Reuse Region; when `n`
/// Property Arrays are programmed, each array's regions are `LLC size / n`
/// bytes long.
///
/// ```
/// use grasp_cachesim::hint::{AddressBoundRegisters, RegionClassifier, ReuseHint};
///
/// let mut abrs = AddressBoundRegisters::new();
/// abrs.program(0x10000, 0x90000); // a 512 KiB property array
/// let classifier = RegionClassifier::new(abrs, 64 * 1024); // 64 KiB LLC
/// assert_eq!(classifier.classify(0x10000), ReuseHint::High);
/// assert_eq!(classifier.classify(0x20000), ReuseHint::Moderate);
/// assert_eq!(classifier.classify(0x40000), ReuseHint::Low);
/// assert_eq!(classifier.classify(0xF0000), ReuseHint::Low);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionClassifier {
    abrs: AddressBoundRegisters,
    llc_bytes: u64,
    high_regions: Vec<BoundPair>,
    moderate_regions: Vec<BoundPair>,
}

impl RegionClassifier {
    /// Builds the classifier from programmed ABRs and the LLC capacity in
    /// bytes.
    pub fn new(abrs: AddressBoundRegisters, llc_bytes: u64) -> Self {
        let count = abrs.programmed_count().max(1) as u64;
        let share = llc_bytes / count;
        let mut high_regions = Vec::new();
        let mut moderate_regions = Vec::new();
        for pair in abrs.pairs() {
            let high_end = (pair.start + share).min(pair.end);
            high_regions.push(BoundPair::new(pair.start, high_end));
            let moderate_end = (high_end + share).min(pair.end);
            moderate_regions.push(BoundPair::new(high_end, moderate_end));
        }
        Self {
            abrs,
            llc_bytes,
            high_regions,
            moderate_regions,
        }
    }

    /// A classifier with unprogrammed ABRs: every address maps to
    /// [`ReuseHint::Default`].
    pub fn disabled() -> Self {
        Self::new(AddressBoundRegisters::new(), 0)
    }

    /// LLC capacity the classifier was built for.
    pub fn llc_bytes(&self) -> u64 {
        self.llc_bytes
    }

    /// Returns `true` if specialized classification is active.
    pub fn is_enabled(&self) -> bool {
        self.abrs.is_programmed()
    }

    /// Bounds of the High Reuse Region of each programmed Property Array.
    pub fn high_regions(&self) -> &[BoundPair] {
        &self.high_regions
    }

    /// Bounds of the Moderate Reuse Region of each programmed Property Array.
    pub fn moderate_regions(&self) -> &[BoundPair] {
        &self.moderate_regions
    }

    /// Classifies an address into a reuse hint.
    #[inline]
    pub fn classify(&self, addr: Address) -> ReuseHint {
        if !self.is_enabled() {
            return ReuseHint::Default;
        }
        for region in &self.high_regions {
            if region.contains(addr) {
                return ReuseHint::High;
            }
        }
        for region in &self.moderate_regions {
            if region.contains(addr) {
                return ReuseHint::Moderate;
            }
        }
        ReuseHint::Low
    }

    /// Classifies a whole address column in one pass, appending one hint per
    /// address to `hints` (cleared first). The disabled check is hoisted out
    /// of the loop; classification is pure, so this is identical to calling
    /// [`RegionClassifier::classify`] per element.
    pub fn classify_column(
        &self,
        addrs: impl IntoIterator<Item = Address>,
        hints: &mut Vec<ReuseHint>,
    ) {
        hints.clear();
        if !self.is_enabled() {
            hints.extend(addrs.into_iter().map(|_| ReuseHint::Default));
            return;
        }
        hints.extend(addrs.into_iter().map(|addr| {
            for region in &self.high_regions {
                if region.contains(addr) {
                    return ReuseHint::High;
                }
            }
            for region in &self.moderate_regions {
                if region.contains(addr) {
                    return ReuseHint::Moderate;
                }
            }
            ReuseHint::Low
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_encode_decode_round_trip() {
        for hint in [
            ReuseHint::High,
            ReuseHint::Moderate,
            ReuseHint::Low,
            ReuseHint::Default,
        ] {
            assert_eq!(ReuseHint::decode(hint.encode()), hint);
            assert!(hint.encode() <= 3, "hint must fit in 2 bits");
        }
    }

    #[test]
    #[should_panic(expected = "2-bit value")]
    fn decode_rejects_wide_values() {
        let _ = ReuseHint::decode(4);
    }

    #[test]
    fn default_hint_is_default() {
        assert_eq!(ReuseHint::default(), ReuseHint::Default);
    }

    #[test]
    fn bound_pair_contains() {
        let p = BoundPair::new(100, 200);
        assert!(p.contains(100));
        assert!(p.contains(199));
        assert!(!p.contains(200));
        assert!(!p.contains(99));
        assert_eq!(p.len(), 100);
        assert!(!p.is_empty());
        assert!(BoundPair::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "end must not precede start")]
    fn inverted_bounds_panic() {
        let _ = BoundPair::new(10, 5);
    }

    #[test]
    fn unprogrammed_registers_disable_classification() {
        let c = RegionClassifier::disabled();
        assert!(!c.is_enabled());
        assert_eq!(c.classify(0), ReuseHint::Default);
        assert_eq!(c.classify(u64::MAX), ReuseHint::Default);
    }

    #[test]
    fn single_array_regions() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x1000, 0x1000 + 1024 * 1024); // 1 MiB array
        let c = RegionClassifier::new(abrs, 64 * 1024);
        // First 64 KiB -> High.
        assert_eq!(c.classify(0x1000), ReuseHint::High);
        assert_eq!(c.classify(0x1000 + 64 * 1024 - 1), ReuseHint::High);
        // Next 64 KiB -> Moderate.
        assert_eq!(c.classify(0x1000 + 64 * 1024), ReuseHint::Moderate);
        assert_eq!(c.classify(0x1000 + 128 * 1024 - 1), ReuseHint::Moderate);
        // Rest of the array -> Low.
        assert_eq!(c.classify(0x1000 + 128 * 1024), ReuseHint::Low);
        // Outside the array (graph app, other data) -> Low.
        assert_eq!(c.classify(0), ReuseHint::Low);
    }

    #[test]
    fn two_arrays_split_the_llc_share() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x0, 0x100000);
        abrs.program(0x400000, 0x500000);
        let c = RegionClassifier::new(abrs, 128 * 1024);
        // Each array's High region is 64 KiB.
        assert_eq!(c.classify(0x0), ReuseHint::High);
        assert_eq!(c.classify(64 * 1024 - 1), ReuseHint::High);
        assert_eq!(c.classify(64 * 1024), ReuseHint::Moderate);
        assert_eq!(c.classify(0x400000), ReuseHint::High);
        assert_eq!(c.classify(0x400000 + 64 * 1024), ReuseHint::Moderate);
        assert_eq!(c.classify(0x400000 + 128 * 1024), ReuseHint::Low);
    }

    #[test]
    fn small_arrays_clamp_regions_to_their_length() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x0, 0x800); // 2 KiB array, much smaller than the LLC
        let c = RegionClassifier::new(abrs, 64 * 1024);
        assert_eq!(c.classify(0x0), ReuseHint::High);
        assert_eq!(c.classify(0x7FF), ReuseHint::High);
        // Addresses past the array are Low even though the "share" is larger.
        assert_eq!(c.classify(0x800), ReuseHint::Low);
        assert!(c.moderate_regions()[0].is_empty());
    }

    #[test]
    fn columnar_classification_matches_per_address_calls() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0x1000, 0x1000 + 1024 * 1024);
        for classifier in [
            RegionClassifier::new(abrs, 64 * 1024),
            RegionClassifier::disabled(),
        ] {
            let addrs: Vec<Address> = (0..512u64).map(|i| i * 769).collect();
            let mut hints = Vec::new();
            classifier.classify_column(addrs.iter().copied(), &mut hints);
            let expected: Vec<ReuseHint> = addrs.iter().map(|&a| classifier.classify(a)).collect();
            assert_eq!(expected, hints);
        }
    }

    #[test]
    #[should_panic(expected = "ABR pairs are in use")]
    fn programming_too_many_pairs_panics() {
        let mut abrs = AddressBoundRegisters::new();
        for i in 0..=MAX_ABR_PAIRS as u64 {
            abrs.program(i * 0x1000, i * 0x1000 + 0x100);
        }
    }

    #[test]
    fn clear_resets_registers() {
        let mut abrs = AddressBoundRegisters::new();
        abrs.program(0, 100);
        assert!(abrs.is_programmed());
        abrs.clear();
        assert!(!abrs.is_programmed());
        assert_eq!(abrs.programmed_count(), 0);
    }
}
