//! The staged view of the cache hierarchy: an upper-level filter stage
//! (L1 + L2 + stride prefetcher + GRASP's region classification) feeding a
//! last-level-cache stage through the [`LlcSink`] interface.
//!
//! The split exists because everything above the LLC is **independent of the
//! LLC replacement policy**: L1 and L2 are LRU-managed, the prefetcher
//! observes the demand stream at L1, and nothing the LLC decides flows back
//! upward. The post-L2 request stream — demand fills, prefetch fills and
//! dirty-victim writebacks, each demand/prefetch request carrying its 2-bit
//! reuse hint — is therefore a pure function of the application. The
//! record-once / replay-many experiment pipeline exploits exactly this:
//!
//! ```text
//!             ┌────────────────────────── UpperLevels ─────────────────────────┐
//!  app access │ L1-D (LRU) → L2 (LRU) → RegionClassifier (ABRs → reuse hint)   │
//!             └──────────────┬─────────────────────────────────────────────────┘
//!                            │ demand / prefetch / writeback   (LlcSink)
//!              ┌─────────────┴─────────────┐
//!              │  LlcStage (policy X)      │   ← simulate now (direct path)
//!              │  LlcTrace (recorder)      │   ← or record once, replay per policy
//!              └───────────────────────────┘
//! ```
//!
//! [`crate::Hierarchy`] composes the two stages back into the classic
//! three-level simulator; [`crate::trace::LlcTrace`] implements [`LlcSink`] as
//! a pure recorder, and [`LlcTrace::replay`](crate::trace::LlcTrace::replay)
//! drives a fresh [`LlcStage`] from the recorded stream — through the *same*
//! code path, which is what makes replayed statistics bit-identical to direct
//! simulation.

use crate::addr::Address;
use crate::cache::{
    record_filter_fused, AccessOutcome, BatchOp, BatchScratch, RecordEscape, SetAssocCache,
    BATCH_TILE,
};
use crate::config::{CacheConfig, HierarchyConfig};
use crate::hint::{RegionClassifier, ReuseHint};
use crate::policy::lru::Lru;
use crate::policy::PolicyDispatch;
use crate::prefetch::StridePrefetcher;
use crate::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};
use crate::stats::CacheStats;
use crate::trace::{decode_record, encode_meta, META_PREFETCH_BIT, META_WRITEBACK_BIT};

/// Consumer of the post-L2 request stream produced by [`UpperLevels`].
///
/// Implemented by [`LlcStage`] (simulate the LLC now) and by
/// [`crate::trace::LlcTrace`] (record the stream for later replay).
pub trait LlcSink {
    /// A demand request that missed L1 and L2. Returns `true` when the
    /// request hits on chip (i.e. in the LLC); recorders return `false`.
    fn demand(&mut self, info: &AccessInfo) -> bool;

    /// A prefetch request that missed L1 and L2.
    fn prefetch(&mut self, info: &AccessInfo);

    /// The writeback of a dirty victim evicted from L2 (or evicted from L1
    /// and absent in L2).
    fn writeback(&mut self, addr: Address);

    /// Consumes a whole flush-free run of post-L2 records at once: `addrs`
    /// and `meta` are the index-aligned encoded columns of the trace format
    /// (demand, prefetch and writeback records only — never flush markers),
    /// in stream order. The default implementation decodes each record and
    /// dispatches it through the per-event methods, so every sink accepts
    /// batches; bulk-native sinks (the trace recorders, the LLC stage)
    /// override it to consume the columns without materializing per-event
    /// structs.
    fn push_batch(&mut self, addrs: &[Address], meta: &[u32]) {
        for (&addr, &meta) in addrs.iter().zip(meta) {
            match decode_record(addr, meta) {
                (info, BatchOp::Demand) => {
                    self.demand(&info);
                }
                (info, BatchOp::Prefetch) => self.prefetch(&info),
                (info, BatchOp::Writeback) => self.writeback(info.addr),
            }
        }
    }
}

/// Reusable encoded sink columns of [`UpperLevels::access_batch`], kept
/// across batches so bulk emission never reallocates in steady state.
#[derive(Debug, Default)]
struct RecordBatchScratch {
    sink_addrs: Vec<Address>,
    sink_meta: Vec<u32>,
}

/// The policy-independent upper levels of the hierarchy: L1-D and L2 (both
/// LRU), the L1 stride prefetcher, and the region classifier that attaches
/// GRASP's reuse hint to every request on its way to the LLC.
pub struct UpperLevels {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    classifier: RegionClassifier,
    prefetcher: Option<StridePrefetcher>,
    abr_bounds: Vec<(Address, Address)>,
    record_batch: RecordBatchScratch,
}

impl std::fmt::Debug for UpperLevels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpperLevels")
            .field("config", &self.config)
            .field("classifier_enabled", &self.classifier.is_enabled())
            .finish()
    }
}

impl UpperLevels {
    /// Creates the filter stage with the given configuration and classifier.
    pub fn new(config: HierarchyConfig, classifier: RegionClassifier) -> Self {
        let l1 = SetAssocCache::new(
            "L1-D",
            config.l1,
            Lru::new(config.l1.sets(), config.l1.ways),
        );
        let l2 = SetAssocCache::new("L2", config.l2, Lru::new(config.l2.sets(), config.l2.ways));
        Self {
            config,
            l1,
            l2,
            classifier,
            prefetcher: config.prefetch.then(StridePrefetcher::default),
            abr_bounds: Vec::new(),
            record_batch: RecordBatchScratch::default(),
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The region classifier in use.
    pub fn classifier(&self) -> &RegionClassifier {
        &self.classifier
    }

    /// Programs the Address Bound Registers with the bounds of the
    /// application's Property Arrays and rebuilds the region classifier
    /// (the software side of GRASP's interface, Sec. III-A).
    pub fn program_abrs(&mut self, bounds: &[(Address, Address)]) {
        let mut abrs = crate::hint::AddressBoundRegisters::new();
        for &(start, end) in bounds {
            abrs.program(start, end);
        }
        self.classifier = RegionClassifier::new(abrs, self.config.llc.size_bytes);
        self.abr_bounds = bounds.to_vec();
    }

    /// The most recently programmed ABR bounds (empty when unprogrammed).
    pub fn abr_bounds(&self) -> &[(Address, Address)] {
        &self.abr_bounds
    }

    /// Accumulated L1-D statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// Accumulated L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Snapshot of everything a recorded trace carries alongside the post-L2
    /// stream (the single source of truth for both recording paths: the
    /// trace-recording [`crate::Hierarchy`] and the LLC-free recorder).
    pub fn record_context(&self) -> crate::trace::RecordContext {
        crate::trace::RecordContext {
            l1: self.l1.stats().clone(),
            l2: self.l2.stats().clone(),
            abr_bounds: self.abr_bounds.clone(),
        }
    }

    /// Performs one demand access, forwarding whatever escapes L2 — the
    /// demand request itself, at most one prefetch request, and any dirty
    /// victim writebacks — into `sink`. Returns `true` if the demand access
    /// hit somewhere on chip.
    pub fn access(
        &mut self,
        addr: Address,
        kind: AccessKind,
        site: AccessSite,
        region: RegionLabel,
        sink: &mut impl LlcSink,
    ) -> bool {
        let base = AccessInfo {
            addr,
            kind,
            site,
            hint: ReuseHint::Default,
            region,
        };

        let on_chip = self.demand(&base, sink);

        // The prefetcher observes the demand stream at L1 and issues at most
        // one prefetch per access.
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            if let Some(predicted) = prefetcher.observe(site, addr) {
                let pf = AccessInfo {
                    addr: predicted,
                    kind: AccessKind::Read,
                    site,
                    hint: ReuseHint::Default,
                    region,
                };
                self.prefetch(&pf, sink);
            }
        }
        on_chip
    }

    /// Batched counterpart of [`UpperLevels::access`]: filters a whole run
    /// of demand accesses through L1 and L2 with the fused record kernel and
    /// appends whatever escapes L2 into `sink` column-wise through
    /// [`LlcSink::push_batch`]. Bit-identical to calling
    /// [`UpperLevels::access`] once per element, in order — same cache
    /// decisions and statistics, same sink record sequence. The incoming
    /// `hint` of each request is ignored, exactly as the scalar entry point
    /// rebuilds it from scratch.
    ///
    /// The run is processed in fixed-size (`BATCH_TILE`) tiles. Each tile makes
    /// one fused pass over both levels with the policy dispatches and the
    /// prefetcher presence check hoisted out of the loop and statistics
    /// deferred to per-tile sums; escaping records are classified and
    /// encoded straight into the reusable sink columns and appended with one
    /// bulk push per tile. (Record streams are overwhelmingly L1 hits, so a
    /// staged columnar variant — interleave, L1 pass, dense re-pack, L2 pass
    /// — measures slower than per-event: the kernel fuses the levels
    /// instead.)
    pub fn access_batch(&mut self, batch: &[AccessInfo], sink: &mut impl LlcSink) {
        let Self {
            l1,
            l2,
            classifier,
            prefetcher,
            record_batch: scratch,
            ..
        } = self;
        let RecordBatchScratch {
            sink_addrs,
            sink_meta,
        } = scratch;
        for start in (0..batch.len()).step_by(BATCH_TILE) {
            let tile = &batch[start..batch.len().min(start + BATCH_TILE)];
            sink_addrs.clear();
            sink_meta.clear();
            {
                let mut emit = |escape: RecordEscape| match escape {
                    RecordEscape::Request { info, prefetch } => {
                        let hinted = info.with_hint(classifier.classify(info.addr));
                        let kind_bit = if prefetch { META_PREFETCH_BIT } else { 0 };
                        sink_addrs.push(hinted.addr);
                        sink_meta.push(encode_meta(&hinted, kind_bit));
                    }
                    RecordEscape::Writeback(addr) => {
                        sink_addrs.push(addr);
                        sink_meta.push(META_WRITEBACK_BIT);
                    }
                };
                record_filter_fused(l1, l2, prefetcher.as_mut(), tile, &mut emit);
            }
            if !sink_addrs.is_empty() {
                sink.push_batch(sink_addrs, sink_meta);
            }
        }
    }

    fn demand(&mut self, info: &AccessInfo, sink: &mut impl LlcSink) -> bool {
        let l1 = self.l1.access(info);
        if l1.is_hit() {
            return true;
        }
        let l2 = self.l2.access(info);
        let mut on_chip = l2.is_hit();
        if !on_chip {
            // The LLC request carries the 2-bit reuse hint computed by
            // GRASP's classification logic (Fig. 4).
            let llc_info = info.with_hint(self.classifier.classify(info.addr));
            on_chip = sink.demand(&llc_info);
        }
        self.drain_writebacks(&l1, &l2, sink);
        on_chip
    }

    fn prefetch(&mut self, info: &AccessInfo, sink: &mut impl LlcSink) {
        let l1 = self.l1.prefetch(info);
        let mut l2 = AccessOutcome {
            hit: true,
            evicted: None,
            evicted_dirty: false,
            bypassed: false,
        };
        if !l1.is_hit() {
            l2 = self.l2.prefetch(info);
            if !l2.is_hit() {
                let llc_info = info.with_hint(self.classifier.classify(info.addr));
                sink.prefetch(&llc_info);
            }
        }
        self.drain_writebacks(&l1, &l2, sink);
    }

    /// Routes the dirty victims of one access down the hierarchy: an L1
    /// victim is written back into L2 (and forwarded to the LLC when L2 does
    /// not hold the block), an L2 victim goes straight to the LLC.
    fn drain_writebacks(
        &mut self,
        l1: &AccessOutcome,
        l2: &AccessOutcome,
        sink: &mut impl LlcSink,
    ) {
        if l1.evicted_dirty {
            if let Some(block) = l1.evicted {
                let addr = block * self.config.l1.block_bytes;
                if !self.l2.writeback(addr) {
                    sink.writeback(addr);
                }
            }
        }
        if l2.evicted_dirty {
            if let Some(block) = l2.evicted {
                sink.writeback(block * self.config.l2.block_bytes);
            }
        }
    }

    /// Invalidates both levels, resets their LRU state and clears the
    /// prefetcher's stride training.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            prefetcher.reset();
        }
    }
}

/// The LLC stage: a single set-associative cache under the replacement policy
/// being evaluated, plus the count of demand requests that fell through to
/// main memory.
///
/// Both the direct simulation path ([`crate::Hierarchy`]) and trace replay
/// ([`crate::trace::LlcTrace::replay`]) drive this same type, which is what
/// guarantees bit-identical statistics between the two.
pub struct LlcStage {
    cache: SetAssocCache,
    memory_accesses: u64,
    /// Reusable lookup columns of the bulk-sink path (simulate-while-record).
    scratch: BatchScratch,
}

impl std::fmt::Debug for LlcStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlcStage")
            .field("policy", &self.cache.policy_name())
            .field("memory_accesses", &self.memory_accesses)
            .finish()
    }
}

impl LlcStage {
    /// Creates the LLC stage with the given geometry and replacement policy.
    pub fn new(config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        Self {
            cache: SetAssocCache::new("LLC", config, policy),
            memory_accesses: 0,
            scratch: BatchScratch::new(),
        }
    }

    /// Name of the replacement policy managing the LLC.
    pub fn policy_name(&self) -> &'static str {
        self.cache.policy_name()
    }

    /// Accumulated LLC statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Demand requests that had to go to main memory (== demand LLC misses).
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Simulates one demand request; returns `true` on an LLC hit.
    #[inline]
    pub fn demand(&mut self, info: &AccessInfo) -> bool {
        let hit = self.cache.access(info).is_hit();
        if !hit {
            self.memory_accesses += 1;
        }
        hit
    }

    /// Simulates one prefetch request.
    #[inline]
    pub fn prefetch(&mut self, info: &AccessInfo) {
        self.cache.prefetch(info);
    }

    /// Replays one flush-free tile of a recorded post-L2 stream — demand,
    /// prefetch and writeback records freely interleaved, each tagged with
    /// its [`crate::cache::BatchOp`] — through the mixed batched kernel
    /// ([`SetAssocCache::replay_batch`]). Every demand miss reaches memory,
    /// so the memory-access counter advances by the tile's demand-miss
    /// count. Bit-identical to dispatching each record through
    /// [`LlcStage::demand`] / [`LlcStage::prefetch`] /
    /// [`LlcStage::writeback`] in order.
    #[inline]
    pub fn replay_batch(
        &mut self,
        infos: &[AccessInfo],
        ops: &[crate::cache::BatchOp],
        scratch: &mut crate::cache::BatchScratch,
    ) {
        self.memory_accesses += self.cache.replay_batch(infos, ops, scratch);
    }

    /// Precomputes the lookup columns of a run for
    /// [`LlcStage::replay_batch_prepared`] (see
    /// [`SetAssocCache::prepare_batch`]).
    #[inline]
    pub fn prepare_batch(&self, infos: &[AccessInfo], scratch: &mut crate::cache::BatchScratch) {
        self.cache.prepare_batch(infos, scratch);
    }

    /// Like [`LlcStage::replay_batch`], but over columns already prepared
    /// by [`LlcStage::prepare_batch`] on any same-geometry stage (see
    /// [`SetAssocCache::replay_batch_prepared`]).
    #[inline]
    pub fn replay_batch_prepared(
        &mut self,
        infos: &[AccessInfo],
        ops: &[crate::cache::BatchOp],
        scratch: &crate::cache::BatchScratch,
    ) {
        self.memory_accesses += self.cache.replay_batch_prepared(infos, ops, scratch);
    }

    /// Fused counterpart of [`LlcStage::replay_batch`]
    /// ([`SetAssocCache::replay_batch_fused`]): the tile arrives as its raw
    /// byte-address column plus an in-register record decoder, so nothing is
    /// buffered between decode and lookup.
    #[inline]
    pub fn replay_batch_fused<F>(
        &mut self,
        addrs: &[Address],
        scratch: &mut crate::cache::BatchScratch,
        decode: F,
    ) where
        F: Fn(usize) -> (AccessInfo, crate::cache::BatchOp),
    {
        self.memory_accesses += self.cache.replay_batch_fused(addrs, scratch, decode);
    }

    /// Receives the writeback of a dirty victim from the upper levels.
    #[inline]
    pub fn writeback(&mut self, addr: Address) {
        self.cache.writeback(addr);
    }

    /// Invalidates the cache and resets the replacement policy (statistics
    /// and the memory-access count keep accumulating, mirroring
    /// [`crate::Hierarchy::flush`]).
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// Consumes the stage and returns the LLC statistics.
    pub fn into_stats(self) -> CacheStats {
        self.cache.stats().clone()
    }
}

impl LlcSink for LlcStage {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        LlcStage::demand(self, info)
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        LlcStage::prefetch(self, info);
    }

    fn writeback(&mut self, addr: Address) {
        LlcStage::writeback(self, addr);
    }

    /// Bulk records drive the same fused mixed kernel trace replay uses:
    /// lookup columns straight off the raw address column, each record
    /// decoded in registers as the policy-monomorphized loop consumes it.
    fn push_batch(&mut self, addrs: &[Address], meta: &[u32]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.memory_accesses += self
            .cache
            .replay_batch_fused(addrs, &mut scratch, |i| decode_record(addrs[i], meta[i]));
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::rrip::Drrip;

    /// A sink that counts what reaches it.
    #[derive(Default)]
    struct Counter {
        demands: usize,
        prefetches: usize,
        writebacks: usize,
    }

    impl LlcSink for Counter {
        fn demand(&mut self, _info: &AccessInfo) -> bool {
            self.demands += 1;
            false
        }

        fn prefetch(&mut self, _info: &AccessInfo) {
            self.prefetches += 1;
        }

        fn writeback(&mut self, _addr: Address) {
            self.writebacks += 1;
        }
    }

    fn upper() -> UpperLevels {
        UpperLevels::new(
            HierarchyConfig::scaled_default(),
            RegionClassifier::disabled(),
        )
    }

    #[test]
    fn repeated_accesses_are_filtered() {
        let mut u = upper();
        let mut sink = Counter::default();
        for _ in 0..10 {
            u.access(0x40, AccessKind::Read, 1, RegionLabel::Property, &mut sink);
        }
        assert_eq!(sink.demands, 1, "only the first access escapes L1");
        assert_eq!(u.l1_stats().accesses, 10);
        assert_eq!(u.l2_stats().accesses, 1);
    }

    #[test]
    fn streaming_accesses_produce_prefetch_requests() {
        let mut u = upper();
        let mut sink = Counter::default();
        for i in 0..4096u64 {
            u.access(
                i * 64,
                AccessKind::Read,
                2,
                RegionLabel::EdgeArray,
                &mut sink,
            );
        }
        assert!(sink.prefetches > 0, "stride stream must trigger prefetches");
    }

    #[test]
    fn dirty_victims_are_written_back_post_l2() {
        let mut u = upper();
        let mut sink = Counter::default();
        // Write far more distinct blocks than L1 + L2 hold: dirty victims
        // must eventually spill past L2 into the sink.
        for i in 0..4096u64 {
            u.access(
                i * 64 * 17,
                AccessKind::Write,
                3,
                RegionLabel::Property,
                &mut sink,
            );
        }
        assert!(sink.writebacks > 0, "dirty evictions must reach the LLC");
        assert!(
            sink.writebacks <= 2 * (sink.demands + sink.prefetches),
            "at most two post-L2 writebacks per filled request (one per level)"
        );
    }

    #[test]
    fn clean_traffic_produces_no_writebacks() {
        let mut u = upper();
        let mut sink = Counter::default();
        for i in 0..4096u64 {
            u.access(
                i * 64 * 17,
                AccessKind::Read,
                3,
                RegionLabel::Property,
                &mut sink,
            );
        }
        assert_eq!(sink.writebacks, 0, "reads never dirty a block");
    }

    /// A stressy access mix: strided reads (train the prefetcher), scattered
    /// writes (dirty victims spill past L2), several sites and regions.
    fn record_mix(len: usize) -> Vec<AccessInfo> {
        (0..len as u64)
            .map(|i| {
                let (addr, kind) = match i % 3 {
                    0 => (i * 64, AccessKind::Read),
                    1 => ((i * 64 * 17) % (1 << 22), AccessKind::Write),
                    _ => ((i * i * 64) % (1 << 20), AccessKind::Read),
                };
                AccessInfo {
                    addr,
                    kind,
                    site: (i % 7) as AccessSite,
                    hint: ReuseHint::Default,
                    region: RegionLabel::ALL[(i % 5) as usize],
                }
            })
            .collect()
    }

    #[test]
    fn batched_access_records_the_scalar_trace_bit_for_bit() {
        use crate::trace::LlcTrace;
        let mix = record_mix(6000);
        let mut scalar_upper = upper();
        let mut scalar_trace = LlcTrace::new();
        for info in &mix {
            scalar_upper.access(
                info.addr,
                info.kind,
                info.site,
                info.region,
                &mut scalar_trace,
            );
        }
        let mut batched_upper = upper();
        let mut batched_trace = LlcTrace::new();
        // Uneven sub-batches exercise tile boundaries and scratch reuse.
        for window in mix.chunks(997) {
            batched_upper.access_batch(window, &mut batched_trace);
        }
        assert_eq!(scalar_trace, batched_trace, "recorded streams must match");
        assert_eq!(scalar_trace.demand_len(), batched_trace.demand_len());
        assert_eq!(scalar_upper.l1_stats(), batched_upper.l1_stats());
        assert_eq!(scalar_upper.l2_stats(), batched_upper.l2_stats());
        assert!(!batched_trace.is_empty(), "the mix must escape L2");
    }

    #[test]
    fn batched_access_drives_a_simulated_llc_identically() {
        let mix = record_mix(5000);
        let config = CacheConfig::new(64 * 512, 16, 64);
        let mut scalar_upper = upper();
        let mut scalar_stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        for info in &mix {
            scalar_upper.access(
                info.addr,
                info.kind,
                info.site,
                info.region,
                &mut scalar_stage,
            );
        }
        let mut batched_upper = upper();
        let mut batched_stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        for window in mix.chunks(1203) {
            batched_upper.access_batch(window, &mut batched_stage);
        }
        assert_eq!(scalar_stage.stats(), batched_stage.stats());
        assert_eq!(
            scalar_stage.memory_accesses(),
            batched_stage.memory_accesses()
        );
        assert_eq!(scalar_upper.l1_stats(), batched_upper.l1_stats());
        assert_eq!(scalar_upper.l2_stats(), batched_upper.l2_stats());
    }

    #[test]
    fn llc_stage_counts_memory_accesses() {
        let config = CacheConfig::new(64 * 256, 16, 64);
        let mut stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        stage.demand(&AccessInfo::read(0x40));
        stage.demand(&AccessInfo::read(0x40));
        assert_eq!(stage.stats().accesses, 2);
        assert_eq!(stage.stats().misses, 1);
        assert_eq!(stage.memory_accesses(), 1);
    }

    #[test]
    fn llc_stage_flush_keeps_counters() {
        let config = CacheConfig::new(64 * 256, 16, 64);
        let mut stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        stage.demand(&AccessInfo::read(0x40));
        stage.flush();
        stage.demand(&AccessInfo::read(0x40));
        assert_eq!(stage.memory_accesses(), 2, "flush invalidates the block");
        assert_eq!(stage.stats().accesses, 2);
    }
}
