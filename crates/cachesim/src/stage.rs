//! The staged view of the cache hierarchy: an upper-level filter stage
//! (L1 + L2 + stride prefetcher + GRASP's region classification) feeding a
//! last-level-cache stage through the [`LlcSink`] interface.
//!
//! The split exists because everything above the LLC is **independent of the
//! LLC replacement policy**: L1 and L2 are LRU-managed, the prefetcher
//! observes the demand stream at L1, and nothing the LLC decides flows back
//! upward. The post-L2 request stream — demand fills, prefetch fills and
//! dirty-victim writebacks, each demand/prefetch request carrying its 2-bit
//! reuse hint — is therefore a pure function of the application. The
//! record-once / replay-many experiment pipeline exploits exactly this:
//!
//! ```text
//!             ┌────────────────────────── UpperLevels ─────────────────────────┐
//!  app access │ L1-D (LRU) → L2 (LRU) → RegionClassifier (ABRs → reuse hint)   │
//!             └──────────────┬─────────────────────────────────────────────────┘
//!                            │ demand / prefetch / writeback   (LlcSink)
//!              ┌─────────────┴─────────────┐
//!              │  LlcStage (policy X)      │   ← simulate now (direct path)
//!              │  LlcTrace (recorder)      │   ← or record once, replay per policy
//!              └───────────────────────────┘
//! ```
//!
//! [`crate::Hierarchy`] composes the two stages back into the classic
//! three-level simulator; [`crate::trace::LlcTrace`] implements [`LlcSink`] as
//! a pure recorder, and [`LlcTrace::replay`](crate::trace::LlcTrace::replay)
//! drives a fresh [`LlcStage`] from the recorded stream — through the *same*
//! code path, which is what makes replayed statistics bit-identical to direct
//! simulation.

use crate::addr::Address;
use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::{CacheConfig, HierarchyConfig};
use crate::hint::RegionClassifier;
use crate::policy::lru::Lru;
use crate::policy::PolicyDispatch;
use crate::prefetch::StridePrefetcher;
use crate::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};
use crate::stats::CacheStats;

/// Consumer of the post-L2 request stream produced by [`UpperLevels`].
///
/// Implemented by [`LlcStage`] (simulate the LLC now) and by
/// [`crate::trace::LlcTrace`] (record the stream for later replay).
pub trait LlcSink {
    /// A demand request that missed L1 and L2. Returns `true` when the
    /// request hits on chip (i.e. in the LLC); recorders return `false`.
    fn demand(&mut self, info: &AccessInfo) -> bool;

    /// A prefetch request that missed L1 and L2.
    fn prefetch(&mut self, info: &AccessInfo);

    /// The writeback of a dirty victim evicted from L2 (or evicted from L1
    /// and absent in L2).
    fn writeback(&mut self, addr: Address);
}

/// The policy-independent upper levels of the hierarchy: L1-D and L2 (both
/// LRU), the L1 stride prefetcher, and the region classifier that attaches
/// GRASP's reuse hint to every request on its way to the LLC.
pub struct UpperLevels {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    classifier: RegionClassifier,
    prefetcher: Option<StridePrefetcher>,
    abr_bounds: Vec<(Address, Address)>,
}

impl std::fmt::Debug for UpperLevels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpperLevels")
            .field("config", &self.config)
            .field("classifier_enabled", &self.classifier.is_enabled())
            .finish()
    }
}

impl UpperLevels {
    /// Creates the filter stage with the given configuration and classifier.
    pub fn new(config: HierarchyConfig, classifier: RegionClassifier) -> Self {
        let l1 = SetAssocCache::new(
            "L1-D",
            config.l1,
            Lru::new(config.l1.sets(), config.l1.ways),
        );
        let l2 = SetAssocCache::new("L2", config.l2, Lru::new(config.l2.sets(), config.l2.ways));
        Self {
            config,
            l1,
            l2,
            classifier,
            prefetcher: config.prefetch.then(StridePrefetcher::default),
            abr_bounds: Vec::new(),
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// The region classifier in use.
    pub fn classifier(&self) -> &RegionClassifier {
        &self.classifier
    }

    /// Programs the Address Bound Registers with the bounds of the
    /// application's Property Arrays and rebuilds the region classifier
    /// (the software side of GRASP's interface, Sec. III-A).
    pub fn program_abrs(&mut self, bounds: &[(Address, Address)]) {
        let mut abrs = crate::hint::AddressBoundRegisters::new();
        for &(start, end) in bounds {
            abrs.program(start, end);
        }
        self.classifier = RegionClassifier::new(abrs, self.config.llc.size_bytes);
        self.abr_bounds = bounds.to_vec();
    }

    /// The most recently programmed ABR bounds (empty when unprogrammed).
    pub fn abr_bounds(&self) -> &[(Address, Address)] {
        &self.abr_bounds
    }

    /// Accumulated L1-D statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// Accumulated L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Snapshot of everything a recorded trace carries alongside the post-L2
    /// stream (the single source of truth for both recording paths: the
    /// trace-recording [`crate::Hierarchy`] and the LLC-free recorder).
    pub fn record_context(&self) -> crate::trace::RecordContext {
        crate::trace::RecordContext {
            l1: self.l1.stats().clone(),
            l2: self.l2.stats().clone(),
            abr_bounds: self.abr_bounds.clone(),
        }
    }

    /// Performs one demand access, forwarding whatever escapes L2 — the
    /// demand request itself, at most one prefetch request, and any dirty
    /// victim writebacks — into `sink`. Returns `true` if the demand access
    /// hit somewhere on chip.
    pub fn access(
        &mut self,
        addr: Address,
        kind: AccessKind,
        site: AccessSite,
        region: RegionLabel,
        sink: &mut impl LlcSink,
    ) -> bool {
        let base = AccessInfo {
            addr,
            kind,
            site,
            hint: crate::hint::ReuseHint::Default,
            region,
        };

        let on_chip = self.demand(&base, sink);

        // The prefetcher observes the demand stream at L1 and issues at most
        // one prefetch per access.
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            if let Some(predicted) = prefetcher.observe(site, addr) {
                let pf = AccessInfo {
                    addr: predicted,
                    kind: AccessKind::Read,
                    site,
                    hint: crate::hint::ReuseHint::Default,
                    region,
                };
                self.prefetch(&pf, sink);
            }
        }
        on_chip
    }

    fn demand(&mut self, info: &AccessInfo, sink: &mut impl LlcSink) -> bool {
        let l1 = self.l1.access(info);
        if l1.is_hit() {
            return true;
        }
        let l2 = self.l2.access(info);
        let mut on_chip = l2.is_hit();
        if !on_chip {
            // The LLC request carries the 2-bit reuse hint computed by
            // GRASP's classification logic (Fig. 4).
            let llc_info = info.with_hint(self.classifier.classify(info.addr));
            on_chip = sink.demand(&llc_info);
        }
        self.drain_writebacks(&l1, &l2, sink);
        on_chip
    }

    fn prefetch(&mut self, info: &AccessInfo, sink: &mut impl LlcSink) {
        let l1 = self.l1.prefetch(info);
        let mut l2 = AccessOutcome {
            hit: true,
            evicted: None,
            evicted_dirty: false,
            bypassed: false,
        };
        if !l1.is_hit() {
            l2 = self.l2.prefetch(info);
            if !l2.is_hit() {
                let llc_info = info.with_hint(self.classifier.classify(info.addr));
                sink.prefetch(&llc_info);
            }
        }
        self.drain_writebacks(&l1, &l2, sink);
    }

    /// Routes the dirty victims of one access down the hierarchy: an L1
    /// victim is written back into L2 (and forwarded to the LLC when L2 does
    /// not hold the block), an L2 victim goes straight to the LLC.
    fn drain_writebacks(
        &mut self,
        l1: &AccessOutcome,
        l2: &AccessOutcome,
        sink: &mut impl LlcSink,
    ) {
        if l1.evicted_dirty {
            if let Some(block) = l1.evicted {
                let addr = block * self.config.l1.block_bytes;
                if !self.l2.writeback(addr) {
                    sink.writeback(addr);
                }
            }
        }
        if l2.evicted_dirty {
            if let Some(block) = l2.evicted {
                sink.writeback(block * self.config.l2.block_bytes);
            }
        }
    }

    /// Invalidates both levels, resets their LRU state and clears the
    /// prefetcher's stride training.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        if let Some(prefetcher) = self.prefetcher.as_mut() {
            prefetcher.reset();
        }
    }
}

/// The LLC stage: a single set-associative cache under the replacement policy
/// being evaluated, plus the count of demand requests that fell through to
/// main memory.
///
/// Both the direct simulation path ([`crate::Hierarchy`]) and trace replay
/// ([`crate::trace::LlcTrace::replay`]) drive this same type, which is what
/// guarantees bit-identical statistics between the two.
pub struct LlcStage {
    cache: SetAssocCache,
    memory_accesses: u64,
}

impl std::fmt::Debug for LlcStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlcStage")
            .field("policy", &self.cache.policy_name())
            .field("memory_accesses", &self.memory_accesses)
            .finish()
    }
}

impl LlcStage {
    /// Creates the LLC stage with the given geometry and replacement policy.
    pub fn new(config: CacheConfig, policy: impl Into<PolicyDispatch>) -> Self {
        Self {
            cache: SetAssocCache::new("LLC", config, policy),
            memory_accesses: 0,
        }
    }

    /// Name of the replacement policy managing the LLC.
    pub fn policy_name(&self) -> &'static str {
        self.cache.policy_name()
    }

    /// Accumulated LLC statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Demand requests that had to go to main memory (== demand LLC misses).
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Simulates one demand request; returns `true` on an LLC hit.
    #[inline]
    pub fn demand(&mut self, info: &AccessInfo) -> bool {
        let hit = self.cache.access(info).is_hit();
        if !hit {
            self.memory_accesses += 1;
        }
        hit
    }

    /// Simulates one prefetch request.
    #[inline]
    pub fn prefetch(&mut self, info: &AccessInfo) {
        self.cache.prefetch(info);
    }

    /// Replays one flush-free tile of a recorded post-L2 stream — demand,
    /// prefetch and writeback records freely interleaved, each tagged with
    /// its [`crate::cache::BatchOp`] — through the mixed batched kernel
    /// ([`SetAssocCache::replay_batch`]). Every demand miss reaches memory,
    /// so the memory-access counter advances by the tile's demand-miss
    /// count. Bit-identical to dispatching each record through
    /// [`LlcStage::demand`] / [`LlcStage::prefetch`] /
    /// [`LlcStage::writeback`] in order.
    #[inline]
    pub fn replay_batch(
        &mut self,
        infos: &[AccessInfo],
        ops: &[crate::cache::BatchOp],
        scratch: &mut crate::cache::BatchScratch,
    ) {
        self.memory_accesses += self.cache.replay_batch(infos, ops, scratch);
    }

    /// Precomputes the lookup columns of a run for
    /// [`LlcStage::replay_batch_prepared`] (see
    /// [`SetAssocCache::prepare_batch`]).
    #[inline]
    pub fn prepare_batch(&self, infos: &[AccessInfo], scratch: &mut crate::cache::BatchScratch) {
        self.cache.prepare_batch(infos, scratch);
    }

    /// Like [`LlcStage::replay_batch`], but over columns already prepared
    /// by [`LlcStage::prepare_batch`] on any same-geometry stage (see
    /// [`SetAssocCache::replay_batch_prepared`]).
    #[inline]
    pub fn replay_batch_prepared(
        &mut self,
        infos: &[AccessInfo],
        ops: &[crate::cache::BatchOp],
        scratch: &crate::cache::BatchScratch,
    ) {
        self.memory_accesses += self.cache.replay_batch_prepared(infos, ops, scratch);
    }

    /// Fused counterpart of [`LlcStage::replay_batch`]
    /// ([`SetAssocCache::replay_batch_fused`]): the tile arrives as its raw
    /// byte-address column plus an in-register record decoder, so nothing is
    /// buffered between decode and lookup.
    #[inline]
    pub fn replay_batch_fused<F>(
        &mut self,
        addrs: &[Address],
        scratch: &mut crate::cache::BatchScratch,
        decode: F,
    ) where
        F: Fn(usize) -> (AccessInfo, crate::cache::BatchOp),
    {
        self.memory_accesses += self.cache.replay_batch_fused(addrs, scratch, decode);
    }

    /// Receives the writeback of a dirty victim from the upper levels.
    #[inline]
    pub fn writeback(&mut self, addr: Address) {
        self.cache.writeback(addr);
    }

    /// Invalidates the cache and resets the replacement policy (statistics
    /// and the memory-access count keep accumulating, mirroring
    /// [`crate::Hierarchy::flush`]).
    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// Consumes the stage and returns the LLC statistics.
    pub fn into_stats(self) -> CacheStats {
        self.cache.stats().clone()
    }
}

impl LlcSink for LlcStage {
    fn demand(&mut self, info: &AccessInfo) -> bool {
        LlcStage::demand(self, info)
    }

    fn prefetch(&mut self, info: &AccessInfo) {
        LlcStage::prefetch(self, info);
    }

    fn writeback(&mut self, addr: Address) {
        LlcStage::writeback(self, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::rrip::Drrip;

    /// A sink that counts what reaches it.
    #[derive(Default)]
    struct Counter {
        demands: usize,
        prefetches: usize,
        writebacks: usize,
    }

    impl LlcSink for Counter {
        fn demand(&mut self, _info: &AccessInfo) -> bool {
            self.demands += 1;
            false
        }

        fn prefetch(&mut self, _info: &AccessInfo) {
            self.prefetches += 1;
        }

        fn writeback(&mut self, _addr: Address) {
            self.writebacks += 1;
        }
    }

    fn upper() -> UpperLevels {
        UpperLevels::new(
            HierarchyConfig::scaled_default(),
            RegionClassifier::disabled(),
        )
    }

    #[test]
    fn repeated_accesses_are_filtered() {
        let mut u = upper();
        let mut sink = Counter::default();
        for _ in 0..10 {
            u.access(0x40, AccessKind::Read, 1, RegionLabel::Property, &mut sink);
        }
        assert_eq!(sink.demands, 1, "only the first access escapes L1");
        assert_eq!(u.l1_stats().accesses, 10);
        assert_eq!(u.l2_stats().accesses, 1);
    }

    #[test]
    fn streaming_accesses_produce_prefetch_requests() {
        let mut u = upper();
        let mut sink = Counter::default();
        for i in 0..4096u64 {
            u.access(
                i * 64,
                AccessKind::Read,
                2,
                RegionLabel::EdgeArray,
                &mut sink,
            );
        }
        assert!(sink.prefetches > 0, "stride stream must trigger prefetches");
    }

    #[test]
    fn dirty_victims_are_written_back_post_l2() {
        let mut u = upper();
        let mut sink = Counter::default();
        // Write far more distinct blocks than L1 + L2 hold: dirty victims
        // must eventually spill past L2 into the sink.
        for i in 0..4096u64 {
            u.access(
                i * 64 * 17,
                AccessKind::Write,
                3,
                RegionLabel::Property,
                &mut sink,
            );
        }
        assert!(sink.writebacks > 0, "dirty evictions must reach the LLC");
        assert!(
            sink.writebacks <= 2 * (sink.demands + sink.prefetches),
            "at most two post-L2 writebacks per filled request (one per level)"
        );
    }

    #[test]
    fn clean_traffic_produces_no_writebacks() {
        let mut u = upper();
        let mut sink = Counter::default();
        for i in 0..4096u64 {
            u.access(
                i * 64 * 17,
                AccessKind::Read,
                3,
                RegionLabel::Property,
                &mut sink,
            );
        }
        assert_eq!(sink.writebacks, 0, "reads never dirty a block");
    }

    #[test]
    fn llc_stage_counts_memory_accesses() {
        let config = CacheConfig::new(64 * 256, 16, 64);
        let mut stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        stage.demand(&AccessInfo::read(0x40));
        stage.demand(&AccessInfo::read(0x40));
        assert_eq!(stage.stats().accesses, 2);
        assert_eq!(stage.stats().misses, 1);
        assert_eq!(stage.memory_accesses(), 1);
    }

    #[test]
    fn llc_stage_flush_keeps_counters() {
        let config = CacheConfig::new(64 * 256, 16, 64);
        let mut stage = LlcStage::new(config, Drrip::new(config.sets(), config.ways, 1));
        stage.demand(&AccessInfo::read(0x40));
        stage.flush();
        stage.demand(&AccessInfo::read(0x40));
        assert_eq!(stage.memory_accesses(), 2, "flush invalidates the block");
        assert_eq!(stage.stats().accesses, 2);
    }
}
