//! Analytic timing model.
//!
//! The paper reports application speed-up measured in a cycle-accurate
//! out-of-order core simulator. GRASP's benefit, however, comes entirely from
//! LLC miss reduction, so a latency-weighted analytic model is sufficient to
//! reproduce the *relative* performance of the competing schemes: each level
//! of the hierarchy charges its access latency, demand LLC misses charge the
//! DRAM latency (discounted by a memory-level-parallelism factor that stands
//! in for the out-of-order core's ability to overlap misses), and non-memory
//! work contributes a fixed number of cycles per instruction.
//!
//! Absolute cycle counts from this model are *not* meaningful; only ratios
//! between runs that differ in cache policy or data layout are used in the
//! experiment harness (speed-up % over a baseline, as in Figs. 6–10).

use crate::config::LatencyConfig;
use crate::stats::HierarchyStats;
use serde::{Deserialize, Serialize};

/// Latency-weighted cycle model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Per-level and memory latencies.
    pub latency: LatencyConfig,
    /// Cycles of non-memory work charged per instruction.
    pub cycles_per_instruction: f64,
    /// Effective memory-level parallelism: demand DRAM latency is divided by
    /// this factor to model overlapping of independent misses by an OoO core.
    pub memory_level_parallelism: f64,
}

impl TimingModel {
    /// Creates a timing model from a latency configuration with default core
    /// parameters (CPI 0.75 for a 4-wide OoO core, MLP 2.0).
    pub fn new(latency: LatencyConfig) -> Self {
        Self {
            latency,
            cycles_per_instruction: 0.75,
            memory_level_parallelism: 2.0,
        }
    }

    /// Overrides the CPI of non-memory work.
    ///
    /// # Panics
    ///
    /// Panics if `cpi` is not positive.
    #[must_use]
    pub fn with_cpi(mut self, cpi: f64) -> Self {
        assert!(cpi > 0.0, "cpi must be positive");
        self.cycles_per_instruction = cpi;
        self
    }

    /// Overrides the memory-level-parallelism factor.
    ///
    /// # Panics
    ///
    /// Panics if `mlp` is less than 1.
    #[must_use]
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "mlp must be at least 1");
        self.memory_level_parallelism = mlp;
        self
    }

    /// Estimated cycles for a run with the given hierarchy statistics and
    /// `instructions` of non-memory work.
    pub fn cycles(&self, stats: &HierarchyStats, instructions: u64) -> f64 {
        let lat = &self.latency;
        let l1_hits = stats.l1.hits as f64;
        let l2_hits = stats.l2.hits as f64;
        let llc_hits = stats.llc.hits as f64;
        let memory = stats.memory_accesses as f64;

        let compute = instructions as f64 * self.cycles_per_instruction;
        let l1_time = stats.l1.accesses as f64 * lat.l1_cycles as f64;
        let l2_time = (l2_hits + llc_hits + memory) * lat.l2_cycles as f64;
        let llc_time = (llc_hits + memory) * lat.llc_cycles as f64;
        let memory_time = memory * lat.memory_cycles as f64 / self.memory_level_parallelism;
        let _ = l1_hits;
        compute + l1_time + l2_time + llc_time + memory_time
    }

    /// Speed-up (in percent) of `candidate` relative to `baseline` cycles:
    /// positive when the candidate is faster.
    pub fn speedup_pct(baseline_cycles: f64, candidate_cycles: f64) -> f64 {
        (baseline_cycles / candidate_cycles - 1.0) * 100.0
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::new(LatencyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CacheStats, HierarchyStats};

    fn stats(l1_hits: u64, l2_hits: u64, llc_hits: u64, mem: u64) -> HierarchyStats {
        use crate::request::RegionLabel;
        let mut h = HierarchyStats::new();
        let fill = |s: &mut CacheStats, hits: u64, misses: u64| {
            for _ in 0..hits {
                s.record(RegionLabel::Other, true);
            }
            for _ in 0..misses {
                s.record(RegionLabel::Other, false);
            }
        };
        let total = l1_hits + l2_hits + llc_hits + mem;
        fill(&mut h.l1, l1_hits, total - l1_hits);
        fill(&mut h.l2, l2_hits, total - l1_hits - l2_hits);
        fill(&mut h.llc, llc_hits, mem);
        h.memory_accesses = mem;
        h
    }

    #[test]
    fn fewer_llc_misses_means_fewer_cycles() {
        let model = TimingModel::default();
        let worse = stats(1000, 100, 100, 300);
        let better = stats(1000, 100, 200, 200);
        assert!(model.cycles(&better, 10_000) < model.cycles(&worse, 10_000));
    }

    #[test]
    fn memory_latency_dominates_when_misses_dominate() {
        let model = TimingModel::default();
        let all_miss = stats(0, 0, 0, 1000);
        let all_l1 = stats(1000, 0, 0, 0);
        let ratio = model.cycles(&all_miss, 0) / model.cycles(&all_l1, 0);
        assert!(ratio > 10.0, "DRAM-bound run must be much slower ({ratio})");
    }

    #[test]
    fn speedup_sign_convention() {
        assert!(TimingModel::speedup_pct(110.0, 100.0) > 0.0);
        assert!(TimingModel::speedup_pct(100.0, 110.0) < 0.0);
        assert!((TimingModel::speedup_pct(100.0, 100.0)).abs() < 1e-12);
        assert!((TimingModel::speedup_pct(105.0, 100.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn builders_validate() {
        let model = TimingModel::default().with_cpi(1.5).with_mlp(4.0);
        assert!((model.cycles_per_instruction - 1.5).abs() < 1e-12);
        assert!((model.memory_level_parallelism - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cpi must be positive")]
    fn zero_cpi_panics() {
        let _ = TimingModel::default().with_cpi(0.0);
    }

    #[test]
    #[should_panic(expected = "mlp must be at least 1")]
    fn sub_one_mlp_panics() {
        let _ = TimingModel::default().with_mlp(0.5);
    }

    #[test]
    fn instructions_add_compute_time() {
        let model = TimingModel::default();
        let s = stats(100, 0, 0, 0);
        assert!(model.cycles(&s, 1000) > model.cycles(&s, 0));
    }
}
