//! Property tests for the on-disk trace format: persist → load → replay must
//! equal the in-memory trace for arbitrary event sequences (flushes and
//! dirty writebacks included), and a damaged file — truncated anywhere, or
//! with any bit flipped — must surface a typed [`PersistError`], never a
//! silently wrong replay.

use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::grasp::Grasp;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_cachesim::trace::persist::PersistError;
use grasp_cachesim::trace::{LlcTrace, RecordContext, TraceEvent};
use proptest::prelude::*;

/// Arbitrary post-L2 event sequences: demand reads/writes, prefetches,
/// dirty writebacks and flush markers, with varying sites, hints and
/// regions (the same shape `trace_properties.rs` uses).
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..5, 0u64..4096, 0u16..32, 0u8..4, 0u8..5), 1..600).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(kind, blk, site, hint, region)| {
                    let addr = blk * 64;
                    let info = AccessInfo::read(addr)
                        .with_site(site)
                        .with_hint(ReuseHint::decode(hint))
                        .with_region(RegionLabel::ALL[region as usize]);
                    match kind {
                        0 => TraceEvent::Demand(info),
                        1 => TraceEvent::Demand(AccessInfo {
                            kind: grasp_cachesim::AccessKind::Write,
                            ..info
                        }),
                        2 => TraceEvent::Prefetch(info),
                        3 => TraceEvent::Writeback(addr),
                        _ => TraceEvent::Flush,
                    }
                })
                .collect()
        },
    )
}

/// Builds a trace carrying a non-trivial recorded context, so the context
/// block round-trip is exercised alongside the records.
fn build(events: &[TraceEvent], abr_bounds: usize) -> LlcTrace {
    let mut trace = LlcTrace::new();
    for event in events {
        match event {
            TraceEvent::Demand(info) => trace.push(info),
            TraceEvent::Prefetch(info) => trace.push_prefetch(info),
            TraceEvent::Writeback(addr) => trace.push_writeback(*addr),
            TraceEvent::Flush => trace.push_flush(),
        }
    }
    let mut context = RecordContext::default();
    context.l1.record(RegionLabel::Property, false);
    context.l1.record(RegionLabel::EdgeArray, true);
    context.l2.record(RegionLabel::Property, false);
    context.abr_bounds = (0..abr_bounds)
        .map(|i| ((i as u64) << 12, ((i as u64) + 1) << 12))
        .collect();
    trace.set_context(context);
    trace
}

fn persist(trace: &LlcTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace
        .write_to(&mut bytes)
        .expect("in-memory write succeeds");
    bytes
}

proptest! {
    #[test]
    fn persist_load_replay_equals_the_in_memory_trace(
        // The vendored proptest! macro supports one binding: tuple up.
        case in (arb_events(), 0usize..4)
    ) {
        let (events, abr_bounds) = case;
        let trace = build(&events, abr_bounds);
        let bytes = persist(&trace);
        let loaded = LlcTrace::read_from(&mut bytes.as_slice()).expect("clean file loads");

        // Structural equality: records, counts, context, chunk layout.
        prop_assert_eq!(&loaded, &trace);
        prop_assert_eq!(loaded.len(), events.len());
        prop_assert_eq!(loaded.context(), trace.context());

        // Behavioural equality: the loaded trace replays bit-identically —
        // flushes reset policy state and writebacks touch the writeback
        // counters, so both paths are exercised by the event mix.
        let config = CacheConfig::new(64 * 128, 8, 64);
        let original_lru = trace.replay(config, Lru::new(config.sets(), config.ways));
        let loaded_lru = loaded.replay(config, Lru::new(config.sets(), config.ways));
        prop_assert_eq!(&original_lru, &loaded_lru);
        let original_grasp = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        let loaded_grasp = loaded.replay(config, Grasp::new(config.sets(), config.ways, 7));
        prop_assert_eq!(&original_grasp, &loaded_grasp);
    }

    #[test]
    fn truncation_at_any_length_is_a_typed_error(
        case in (arb_events(), 0usize..10_000)
    ) {
        let (events, cut_selector) = case;
        let trace = build(&events, 2);
        let bytes = persist(&trace);
        // Any strict prefix must fail to load — there is no length at which
        // a truncated file silently parses.
        let cut = cut_selector % bytes.len();
        match LlcTrace::read_from(&mut &bytes[..cut]) {
            Err(PersistError::Truncated { .. }) => {}
            Err(other) => prop_assert!(
                false,
                "cut at {} must be Truncated, got {:?}",
                cut,
                other
            ),
            Ok(_) => prop_assert!(false, "a {}-byte prefix must never load", cut),
        }
    }

    #[test]
    fn any_single_bit_flip_is_a_typed_error_never_a_wrong_replay(
        case in (arb_events(), 0usize..100_000, 0u8..8)
    ) {
        let (events, byte_selector, bit) = case;
        let trace = build(&events, 1);
        let mut bytes = persist(&trace);
        let index = byte_selector % bytes.len();
        bytes[index] ^= 1 << bit;
        // Every bit of the file is covered: magic/version/geometry flips hit
        // their structural checks, and everything else — counts, context,
        // payload, the checksum field itself — lands in ChecksumMismatch.
        // Nothing may load successfully.
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(_) => {}
            Ok(loaded) => prop_assert!(
                false,
                "bit {} of byte {} flipped, yet the file loaded ({} events)",
                bit,
                index,
                loaded.len()
            ),
        }
    }

    #[test]
    fn persisted_bytes_are_deterministic(events in arb_events()) {
        // Byte-for-byte determinism is what lets CI cache the store across
        // pushes and lets `publish` skip nothing: same trace, same file.
        let trace = build(&events, 3);
        prop_assert_eq!(persist(&trace), persist(&trace));
    }
}
