//! Property tests for the on-disk trace format, covering **both codecs** of
//! format v2: persist → load → replay must equal the in-memory trace for
//! arbitrary event sequences (flushes and dirty writebacks included), and a
//! damaged file — truncated anywhere, or with any bit flipped, in the raw
//! pages or the compressed frames — must surface a typed [`PersistError`],
//! never a silently wrong replay. `Codec::Raw` doubles as the v1 format
//! (byte-for-byte), so the v1-compatibility promise rides the same
//! properties.

use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::grasp::Grasp;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_cachesim::trace::persist::{Codec, PersistError};
use grasp_cachesim::trace::{LlcTrace, RecordContext, TraceEvent};
use proptest::prelude::*;

/// Arbitrary post-L2 event sequences: demand reads/writes, prefetches,
/// dirty writebacks and flush markers, with varying sites, hints and
/// regions (the same shape `trace_properties.rs` uses).
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..5, 0u64..4096, 0u16..32, 0u8..4, 0u8..5), 1..600).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(kind, blk, site, hint, region)| {
                    let addr = blk * 64;
                    let info = AccessInfo::read(addr)
                        .with_site(site)
                        .with_hint(ReuseHint::decode(hint))
                        .with_region(RegionLabel::ALL[region as usize]);
                    match kind {
                        0 => TraceEvent::Demand(info),
                        1 => TraceEvent::Demand(AccessInfo {
                            kind: grasp_cachesim::AccessKind::Write,
                            ..info
                        }),
                        2 => TraceEvent::Prefetch(info),
                        3 => TraceEvent::Writeback(addr),
                        _ => TraceEvent::Flush,
                    }
                })
                .collect()
        },
    )
}

fn codec_of(selector: u8) -> Codec {
    if selector.is_multiple_of(2) {
        Codec::Raw
    } else {
        Codec::DeltaVarint
    }
}

/// Builds a trace carrying a non-trivial recorded context, so the context
/// block round-trip is exercised alongside the records.
fn build(events: &[TraceEvent], abr_bounds: usize) -> LlcTrace {
    let mut trace = LlcTrace::new();
    for event in events {
        match event {
            TraceEvent::Demand(info) => trace.push(info),
            TraceEvent::Prefetch(info) => trace.push_prefetch(info),
            TraceEvent::Writeback(addr) => trace.push_writeback(*addr),
            TraceEvent::Flush => trace.push_flush(),
        }
    }
    let mut context = RecordContext::default();
    context.l1.record(RegionLabel::Property, false);
    context.l1.record(RegionLabel::EdgeArray, true);
    context.l2.record(RegionLabel::Property, false);
    context.abr_bounds = (0..abr_bounds)
        .map(|i| ((i as u64) << 12, ((i as u64) + 1) << 12))
        .collect();
    trace.set_context(context);
    trace
}

fn persist(trace: &LlcTrace, codec: Codec) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace
        .write_to_with(&mut bytes, codec)
        .expect("in-memory write succeeds");
    bytes
}

proptest! {
    #[test]
    fn persist_load_replay_equals_the_in_memory_trace(
        // The vendored proptest! macro supports one binding: tuple up.
        case in (arb_events(), 0usize..4, 0u8..2)
    ) {
        let (events, abr_bounds, codec_selector) = case;
        let codec = codec_of(codec_selector);
        let trace = build(&events, abr_bounds);
        let bytes = persist(&trace, codec);
        let (loaded, read_codec) = LlcTrace::read_from_with_codec(&mut bytes.as_slice())
            .expect("clean file loads");

        // Structural equality: records, counts, context, chunk layout — and
        // the header reports the codec it was written with.
        prop_assert_eq!(read_codec, codec);
        prop_assert_eq!(&loaded, &trace);
        prop_assert_eq!(loaded.len(), events.len());
        prop_assert_eq!(loaded.context(), trace.context());

        // Behavioural equality: the loaded trace replays bit-identically —
        // flushes reset policy state and writebacks touch the writeback
        // counters, so both paths are exercised by the event mix.
        let config = CacheConfig::new(64 * 128, 8, 64);
        let original_lru = trace.replay(config, Lru::new(config.sets(), config.ways));
        let loaded_lru = loaded.replay(config, Lru::new(config.sets(), config.ways));
        prop_assert_eq!(&original_lru, &loaded_lru);
        let original_grasp = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        let loaded_grasp = loaded.replay(config, Grasp::new(config.sets(), config.ways, 7));
        prop_assert_eq!(&original_grasp, &loaded_grasp);
    }

    #[test]
    fn codecs_agree_with_each_other(
        case in (arb_events(), 0usize..3)
    ) {
        // The codec is an encoding choice, never a semantic one: a raw file
        // and a compressed file of the same trace load to *equal* traces
        // (chunk layout included), so store hits may be served cross-codec.
        let (events, abr_bounds) = case;
        let trace = build(&events, abr_bounds);
        let from_raw = LlcTrace::read_from(&mut persist(&trace, Codec::Raw).as_slice())
            .expect("raw loads");
        let from_dv = LlcTrace::read_from(&mut persist(&trace, Codec::DeltaVarint).as_slice())
            .expect("delta-varint loads");
        prop_assert_eq!(&from_raw, &from_dv);
        prop_assert_eq!(&from_raw, &trace);
    }

    #[test]
    fn truncation_at_any_length_is_a_typed_error(
        case in (arb_events(), 0usize..10_000, 0u8..2)
    ) {
        let (events, cut_selector, codec_selector) = case;
        let trace = build(&events, 2);
        let bytes = persist(&trace, codec_of(codec_selector));
        // Any strict prefix must fail to load — there is no length at which
        // a truncated file silently parses.
        let cut = cut_selector % bytes.len();
        match LlcTrace::read_from(&mut &bytes[..cut]) {
            Err(PersistError::Truncated { .. }) => {}
            Err(other) => prop_assert!(
                false,
                "cut at {} must be Truncated, got {:?}",
                cut,
                other
            ),
            Ok(_) => prop_assert!(false, "a {}-byte prefix must never load", cut),
        }
    }

    #[test]
    fn any_single_bit_flip_is_a_typed_error_never_a_wrong_replay(
        case in (arb_events(), 0usize..100_000, 0u8..8, 0u8..2)
    ) {
        let (events, byte_selector, bit, codec_selector) = case;
        let trace = build(&events, 1);
        let mut bytes = persist(&trace, codec_of(codec_selector));
        let index = byte_selector % bytes.len();
        bytes[index] ^= 1 << bit;
        // Every bit of the file is covered: magic/version/codec/geometry
        // flips hit their structural checks, flips inside a compressed frame
        // may derail a varint or the dictionary (also structural), and
        // everything else — counts, context, payload, the checksum field
        // itself — lands in ChecksumMismatch. Nothing may load successfully.
        match LlcTrace::read_from(&mut bytes.as_slice()) {
            Err(_) => {}
            Ok(loaded) => prop_assert!(
                false,
                "bit {} of byte {} flipped, yet the file loaded ({} events)",
                bit,
                index,
                loaded.len()
            ),
        }
    }

    #[test]
    fn persisted_bytes_are_deterministic(
        case in (arb_events(), 0u8..2)
    ) {
        // Byte-for-byte determinism is what lets CI cache the store across
        // pushes and lets `publish` skip nothing: same trace, same codec,
        // same file.
        let (events, codec_selector) = case;
        let codec = codec_of(codec_selector);
        let trace = build(&events, 3);
        prop_assert_eq!(persist(&trace, codec), persist(&trace, codec));
    }

    #[test]
    fn v1_files_still_load_byte_for_byte(events in arb_events()) {
        // Raw writes *are* the v1 format: version field 1, reserved word 0,
        // 12 B/record SoA pages. A build that ever stops reading them breaks
        // every pre-codec store, so the shape is pinned as a property over
        // arbitrary traces, not just one golden file.
        let trace = build(&events, 2);
        let bytes = persist(&trace, Codec::Raw);
        prop_assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        prop_assert_eq!(u32::from_le_bytes(bytes[36..40].try_into().unwrap()), 0);
        let context_len = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        prop_assert_eq!(bytes.len(), 48 + context_len + trace.len() * 12);
        let (loaded, codec) = LlcTrace::read_from_with_codec(&mut bytes.as_slice())
            .expect("v1 file loads");
        prop_assert_eq!(codec, Codec::Raw);
        prop_assert_eq!(&loaded, &trace);
    }

    #[test]
    fn delta_varint_never_inflates_pathologically(events in arb_events()) {
        // Even adversarial event mixes (random addresses, alternating kinds)
        // must stay within the frame-length plausibility bound the reader
        // enforces — otherwise valid files would be rejected as corrupt.
        let trace = build(&events, 1);
        let raw = persist(&trace, Codec::Raw);
        let dv = persist(&trace, Codec::DeltaVarint);
        // Worst-case expansion is bounded: 10-byte address varints + the
        // dictionary + 2-byte indices vs 12 raw bytes per record, plus the
        // 4-byte frame prefix per chunk.
        prop_assert!(dv.len() <= raw.len() * 2 + 64,
            "delta-varint exploded: {} vs raw {}", dv.len(), raw.len());
    }
}
