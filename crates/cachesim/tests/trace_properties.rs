//! Property tests for the canonical post-L2 trace: the chunked SoA storage
//! must round-trip arbitrary event sequences exactly (`push`/`get`/`iter`/
//! `to_vec` always agree), replay must be deterministic, and the streaming
//! pipeline (chunk channel + incremental replayer) must reproduce buffered
//! replay bit-for-bit for arbitrary event sequences — flushes and
//! writebacks included.

use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::grasp::Grasp;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::policy::rrip::Drrip;
use grasp_cachesim::policy::PolicyDispatch;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_cachesim::trace::{
    chunk_channel_with, replay_stream, ChunkReceiver, ChunkReplayer, LlcTrace, RecordContext,
    TraceEvent, TraceStreamer,
};
use proptest::prelude::*;

/// An arbitrary event: selector (demand read / demand write / prefetch /
/// writeback), block index, site, hint selector, region selector.
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    arb_events_with_flushes(4)
}

/// Like [`arb_events`], but selector values ≥ 4 become flush markers when
/// `kinds` is 5 (the streaming parity property exercises them; the storage
/// round-trip keeps the historical distribution).
fn arb_events_with_flushes(kinds: u8) -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..kinds, 0u64..4096, 0u16..32, 0u8..4, 0u8..5), 1..800).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(kind, blk, site, hint, region)| {
                    let addr = blk * 64;
                    let info = AccessInfo::read(addr)
                        .with_site(site)
                        .with_hint(ReuseHint::decode(hint))
                        .with_region(RegionLabel::ALL[region as usize]);
                    match kind {
                        0 => TraceEvent::Demand(info),
                        1 => TraceEvent::Demand(AccessInfo {
                            kind: grasp_cachesim::AccessKind::Write,
                            ..info
                        }),
                        2 => TraceEvent::Prefetch(info),
                        3 => TraceEvent::Writeback(addr),
                        _ => TraceEvent::Flush,
                    }
                })
                .collect()
        },
    )
}

fn build(events: &[TraceEvent]) -> LlcTrace {
    let mut trace = LlcTrace::new();
    for event in events {
        match event {
            TraceEvent::Demand(info) => trace.push(info),
            TraceEvent::Prefetch(info) => trace.push_prefetch(info),
            TraceEvent::Writeback(addr) => trace.push_writeback(*addr),
            TraceEvent::Flush => trace.push_flush(),
        }
    }
    trace
}

proptest! {
    #[test]
    fn push_get_iter_and_to_vec_agree(events in arb_events()) {
        let trace = build(&events);
        prop_assert_eq!(trace.len(), events.len());
        let demand_count = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Demand(_)))
            .count();
        prop_assert_eq!(trace.demand_len(), demand_count);
        // get() agrees with the source events...
        for (i, expected) in events.iter().enumerate() {
            prop_assert_eq!(&trace.get(i), expected, "index {}", i);
        }
        // ...and with iter() / to_vec().
        let iterated: Vec<TraceEvent> = trace.iter().collect();
        prop_assert_eq!(&iterated, &events);
        prop_assert_eq!(&trace.to_vec(), &events);
        // The demand view is the demand subsequence, in order.
        let demands: Vec<AccessInfo> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Demand(info) => Some(*info),
                _ => None,
            })
            .collect();
        prop_assert_eq!(trace.demand_vec(), demands);
    }

    #[test]
    fn replay_is_deterministic_across_repeated_runs(events in arb_events()) {
        let trace = build(&events);
        let config = CacheConfig::new(64 * 128, 8, 64);
        let lru_a = trace.replay(config, Lru::new(config.sets(), config.ways));
        let lru_b = trace.replay(config, Lru::new(config.sets(), config.ways));
        prop_assert_eq!(&lru_a, &lru_b);
        let grasp_a = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        let grasp_b = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        prop_assert_eq!(&grasp_a, &grasp_b);
        // Internal consistency of the replayed hierarchy view.
        prop_assert_eq!(lru_a.llc.accesses as usize, trace.demand_len());
        prop_assert_eq!(lru_a.memory_accesses, lru_a.llc.misses);
    }

    #[test]
    fn streaming_replay_is_bit_identical_to_buffered_replay(events in arb_events_with_flushes(5)) {
        let trace = {
            let mut trace = build(&events);
            // A non-trivial recorded context must be carried to every
            // streaming consumer through the end-of-stream marker.
            let mut context = RecordContext::default();
            context.l1.record(RegionLabel::Property, false);
            context.l2.record(RegionLabel::EdgeArray, true);
            context.abr_bounds = vec![(0, 1 << 20)];
            trace.set_context(context);
            trace
        };
        let config = CacheConfig::new(64 * 128, 8, 64);
        let buffered_lru = trace.replay(config, Lru::new(config.sets(), config.ways));
        let buffered_rrip = trace.replay(config, Drrip::new(config.sets(), config.ways, 1));

        // Drive the streaming pipeline with a deliberately tiny chunk size so
        // every case crosses several freeze boundaries, and a producer thread
        // against a shallow (depth-2) channel so backpressure is exercised.
        // Consumer 0 replays both policies off one receiver; consumer 1
        // double-checks LRU from its own copy of the stream.
        let (tap, mut receivers) = chunk_channel_with(2, 2, 7);
        let receiver_b = receivers.pop().expect("two receivers");
        let receiver_a = receivers.pop().expect("two receivers");
        let (streamed_a, streamed_b) = std::thread::scope(|scope| {
            let worker_a = scope.spawn(move || {
                replay_stream(
                    &receiver_a,
                    vec![
                        ChunkReplayer::new(config, Lru::new(config.sets(), config.ways)),
                        ChunkReplayer::new(config, Drrip::new(config.sets(), config.ways, 1)),
                    ],
                )
            });
            let worker_b = scope.spawn(move || {
                replay_stream(
                    &receiver_b,
                    vec![ChunkReplayer::new(
                        config,
                        Lru::new(config.sets(), config.ways),
                    )],
                )
            });
            let mut streamer = TraceStreamer::new(tap);
            for event in &events {
                match event {
                    TraceEvent::Demand(info) => streamer.push(info),
                    TraceEvent::Prefetch(info) => streamer.push_prefetch(info),
                    TraceEvent::Writeback(addr) => streamer.push_writeback(*addr),
                    TraceEvent::Flush => streamer.push_flush(),
                }
            }
            streamer.finish(trace.context().clone());
            (
                worker_a.join().expect("consumer a"),
                worker_b.join().expect("consumer b"),
            )
        });
        prop_assert_eq!(&streamed_a[0], &buffered_lru);
        prop_assert_eq!(&streamed_a[1], &buffered_rrip);
        prop_assert_eq!(&streamed_b[0], &buffered_lru);
        prop_assert_eq!(streamed_a[0].l1.accesses, 1, "recorded L1 stats carried");
    }

    #[test]
    fn batched_feed_is_bit_identical_to_per_event_feed(events in arb_events_with_flushes(5)) {
        // The batched chunk-native kernel against the per-event reference
        // path, over arbitrary event mixes: demand reads and writes, dirty
        // writebacks, prefetches and flushes, across several policies
        // (bypassing GRASP included). Tiny chunks put run boundaries at
        // chunk edges: a run cut mid-stream by a freeze must replay exactly
        // like the same records fed one by one.
        let trace = build(&events);
        let config = CacheConfig::new(64 * 128, 8, 64);
        for chunk_records in [1usize, 7, events.len().max(1)] {
            let (tap, receivers) = chunk_channel_with(
                1,
                events.len().div_ceil(chunk_records) + 1,
                chunk_records,
            );
            trace.stream_into(&tap);
            let mut batched_lru = ChunkReplayer::new(config, Lru::new(config.sets(), config.ways));
            let mut scalar_lru = ChunkReplayer::new(config, Lru::new(config.sets(), config.ways));
            let mut batched_grasp =
                ChunkReplayer::new(config, Grasp::new(config.sets(), config.ways, 7));
            let mut scalar_grasp =
                ChunkReplayer::new(config, Grasp::new(config.sets(), config.ways, 7));
            loop {
                match receivers[0].recv() {
                    Some(grasp_cachesim::trace::StreamItem::Chunk(chunk)) => {
                        batched_lru.feed(&chunk);
                        scalar_lru.feed_scalar(&chunk);
                        batched_grasp.feed(&chunk);
                        scalar_grasp.feed_scalar(&chunk);
                    }
                    Some(grasp_cachesim::trace::StreamItem::End(context)) => {
                        let batched = batched_lru.finish(&context);
                        let scalar = scalar_lru.finish(&context);
                        prop_assert_eq!(&batched, &scalar, "LRU, {} rec/chunk", chunk_records);
                        let batched = batched_grasp.finish(&context);
                        let scalar = scalar_grasp.finish(&context);
                        prop_assert_eq!(&batched, &scalar, "GRASP, {} rec/chunk", chunk_records);
                        break;
                    }
                    None => panic!("stream ended without end-of-stream marker"),
                }
            }
        }
    }

    #[test]
    fn batched_and_scalar_buffered_replays_agree(events in arb_events_with_flushes(5)) {
        let trace = build(&events);
        let config = CacheConfig::new(64 * 128, 8, 64);
        let batched = trace.replay(config, Drrip::new(config.sets(), config.ways, 1));
        let scalar = trace.replay_scalar(config, Drrip::new(config.sets(), config.ways, 1));
        prop_assert_eq!(&batched, &scalar);
    }

    #[test]
    fn fanout_replay_matches_per_policy_replays(events in arb_events_with_flushes(5)) {
        let trace = build(&events);
        let config = CacheConfig::new(64 * 128, 8, 64);
        let fanout = trace.replay_fanout(config, [
            PolicyDispatch::from(Lru::new(config.sets(), config.ways)),
            PolicyDispatch::from(Drrip::new(config.sets(), config.ways, 1)),
            PolicyDispatch::from(Grasp::new(config.sets(), config.ways, 7)),
        ]);
        let solo = [
            trace.replay(config, Lru::new(config.sets(), config.ways)),
            trace.replay(config, Drrip::new(config.sets(), config.ways, 1)),
            trace.replay(config, Grasp::new(config.sets(), config.ways, 7)),
        ];
        prop_assert_eq!(fanout.len(), solo.len());
        for (i, (shared, standalone)) in fanout.iter().zip(&solo).enumerate() {
            prop_assert_eq!(shared, standalone, "policy #{} diverged under the fan-out", i);
        }
    }

    #[test]
    fn rebroadcasting_a_buffered_trace_streams_bit_identically(events in arb_events_with_flushes(5)) {
        let trace = build(&events);
        let config = CacheConfig::new(64 * 64, 4, 64);
        let buffered = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        // Depth covers the whole trace, so no producer thread is needed.
        let chunks = events.len().div_ceil(grasp_cachesim::trace::CHUNK_RECORDS) + 1;
        let (tap, receivers) = chunk_channel_with(1, chunks, grasp_cachesim::trace::CHUNK_RECORDS);
        trace.stream_into(&tap);
        let receiver: &ChunkReceiver = &receivers[0];
        let streamed = replay_stream(
            receiver,
            vec![ChunkReplayer::new(
                config,
                Grasp::new(config.sets(), config.ways, 7),
            )],
        );
        prop_assert_eq!(&streamed[0], &buffered);
    }
}

/// Degenerate scalar-only chunks: a chunk that is 100% writebacks and
/// flushes contains no batchable run at all, so the batched kernel must
/// reduce entirely to the scalar fallback.
#[test]
fn all_writeback_and_flush_chunks_replay_identically() {
    let mut events = Vec::new();
    // Warm some dirty blocks so the writebacks below have residents to hit.
    for blk in 0..64u64 {
        events.push(TraceEvent::Demand(AccessInfo::write(blk * 64)));
    }
    // One chunk's worth of pure writebacks with a flush sprinkled in.
    for blk in 0..512u64 {
        if blk % 97 == 0 {
            events.push(TraceEvent::Flush);
        }
        events.push(TraceEvent::Writeback((blk % 128) * 64));
    }
    let trace = build(&events);
    let config = CacheConfig::new(64 * 128, 8, 64);
    // Chunk size 64 makes the writeback/flush tail span whole chunks with no
    // demand or prefetch record in them.
    let (tap, receivers) = chunk_channel_with(1, events.len().div_ceil(64) + 1, 64);
    trace.stream_into(&tap);
    let mut batched = ChunkReplayer::new(config, Lru::new(config.sets(), config.ways));
    let mut scalar = ChunkReplayer::new(config, Lru::new(config.sets(), config.ways));
    loop {
        match receivers[0].recv() {
            Some(grasp_cachesim::trace::StreamItem::Chunk(chunk)) => {
                batched.feed(&chunk);
                scalar.feed_scalar(&chunk);
            }
            Some(grasp_cachesim::trace::StreamItem::End(context)) => {
                let a = batched.finish(&context);
                let b = scalar.finish(&context);
                assert_eq!(a, b);
                assert!(a.llc.writeback_accesses >= 512, "writebacks all replayed");
                break;
            }
            None => panic!("stream ended without end-of-stream marker"),
        }
    }
}
