//! Property tests for the canonical post-L2 trace: the chunked SoA storage
//! must round-trip arbitrary event sequences exactly (`push`/`get`/`iter`/
//! `to_vec` always agree), and replay must be deterministic.

use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::grasp::Grasp;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_cachesim::trace::{LlcTrace, TraceEvent};
use proptest::prelude::*;

/// An arbitrary event: selector (demand read / demand write / prefetch /
/// writeback), block index, site, hint selector, region selector.
fn arb_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..4, 0u64..4096, 0u16..32, 0u8..4, 0u8..5), 1..800).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(kind, blk, site, hint, region)| {
                    let addr = blk * 64;
                    let info = AccessInfo::read(addr)
                        .with_site(site)
                        .with_hint(ReuseHint::decode(hint))
                        .with_region(RegionLabel::ALL[region as usize]);
                    match kind {
                        0 => TraceEvent::Demand(info),
                        1 => TraceEvent::Demand(AccessInfo {
                            kind: grasp_cachesim::AccessKind::Write,
                            ..info
                        }),
                        2 => TraceEvent::Prefetch(info),
                        _ => TraceEvent::Writeback(addr),
                    }
                })
                .collect()
        },
    )
}

fn build(events: &[TraceEvent]) -> LlcTrace {
    let mut trace = LlcTrace::new();
    for event in events {
        match event {
            TraceEvent::Demand(info) => trace.push(info),
            TraceEvent::Prefetch(info) => trace.push_prefetch(info),
            TraceEvent::Writeback(addr) => trace.push_writeback(*addr),
            TraceEvent::Flush => trace.push_flush(),
        }
    }
    trace
}

proptest! {
    #[test]
    fn push_get_iter_and_to_vec_agree(events in arb_events()) {
        let trace = build(&events);
        prop_assert_eq!(trace.len(), events.len());
        let demand_count = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Demand(_)))
            .count();
        prop_assert_eq!(trace.demand_len(), demand_count);
        // get() agrees with the source events...
        for (i, expected) in events.iter().enumerate() {
            prop_assert_eq!(&trace.get(i), expected, "index {}", i);
        }
        // ...and with iter() / to_vec().
        let iterated: Vec<TraceEvent> = trace.iter().collect();
        prop_assert_eq!(&iterated, &events);
        prop_assert_eq!(&trace.to_vec(), &events);
        // The demand view is the demand subsequence, in order.
        let demands: Vec<AccessInfo> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Demand(info) => Some(*info),
                _ => None,
            })
            .collect();
        prop_assert_eq!(trace.demand_vec(), demands);
    }

    #[test]
    fn replay_is_deterministic_across_repeated_runs(events in arb_events()) {
        let trace = build(&events);
        let config = CacheConfig::new(64 * 128, 8, 64);
        let lru_a = trace.replay(config, Lru::new(config.sets(), config.ways));
        let lru_b = trace.replay(config, Lru::new(config.sets(), config.ways));
        prop_assert_eq!(&lru_a, &lru_b);
        let grasp_a = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        let grasp_b = trace.replay(config, Grasp::new(config.sets(), config.ways, 7));
        prop_assert_eq!(&grasp_a, &grasp_b);
        // Internal consistency of the replayed hierarchy view.
        prop_assert_eq!(lru_a.llc.accesses as usize, trace.demand_len());
        prop_assert_eq!(lru_a.memory_accesses, lru_a.llc.misses);
    }
}
