//! Cross-policy property tests: every online policy must obey basic cache
//! invariants, and Belady's OPT must lower-bound all of them on arbitrary
//! traces.

use grasp_cachesim::cache::SetAssocCache;
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::grasp::{Grasp, GraspMode};
use grasp_cachesim::policy::hawkeye::Hawkeye;
use grasp_cachesim::policy::leeway::Leeway;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::policy::opt::optimal_misses;
use grasp_cachesim::policy::pin::PinX;
use grasp_cachesim::policy::random::RandomReplacement;
use grasp_cachesim::policy::rrip::{Brrip, Drrip, Srrip};
use grasp_cachesim::policy::ship::ShipMem;
use grasp_cachesim::policy::ReplacementPolicy;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use proptest::prelude::*;

fn config() -> CacheConfig {
    CacheConfig::new(64 * 64, 8, 64) // 64 blocks, 8 ways, 8 sets
}

fn all_policies(cfg: &CacheConfig) -> Vec<Box<dyn ReplacementPolicy>> {
    let sets = cfg.sets();
    let ways = cfg.ways;
    vec![
        Box::new(Lru::new(sets, ways)),
        Box::new(RandomReplacement::new(sets, ways, 7)),
        Box::new(Srrip::new(sets, ways)),
        Box::new(Brrip::new(sets, ways, 7)),
        Box::new(Drrip::new(sets, ways, 7)),
        Box::new(ShipMem::new(sets, ways, cfg.block_bytes)),
        Box::new(Hawkeye::new(sets, ways)),
        Box::new(Leeway::new(sets, ways)),
        Box::new(PinX::new(sets, ways, 50)),
        Box::new(Grasp::new(sets, ways, 7)),
        Box::new(Grasp::with_mode(sets, ways, 7, GraspMode::HintsOnly)),
        Box::new(Grasp::with_mode(sets, ways, 7, GraspMode::InsertionOnly)),
    ]
}

/// An arbitrary access: block index, site, hint selector, write flag.
fn arb_trace() -> impl Strategy<Value = Vec<AccessInfo>> {
    proptest::collection::vec((0u64..256, 0u16..4, 0u8..4, proptest::bool::ANY), 1..600).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(blk, site, hint, write)| {
                    let base = if write {
                        AccessInfo::write(blk * 64)
                    } else {
                        AccessInfo::read(blk * 64)
                    };
                    base.with_site(site)
                        .with_hint(ReuseHint::decode(hint))
                        .with_region(RegionLabel::Property)
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Basic accounting invariants hold for every policy on any trace, and
    /// within one run the same block accessed back-to-back always hits.
    #[test]
    fn accounting_invariants(trace in arb_trace()) {
        let cfg = config();
        for policy in all_policies(&cfg) {
            let name = policy.name();
            let mut cache = SetAssocCache::new("LLC", cfg, policy);
            for info in &trace {
                cache.access(info);
                // A block just accessed must be resident (no policy bypasses
                // demand fills in this suite).
                prop_assert!(cache.probe(info.addr).is_some(), "{name}: block not resident");
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.accesses, trace.len() as u64, "{}", name);
            prop_assert_eq!(stats.hits + stats.misses, stats.accesses, "{}", name);
            prop_assert!(cache.resident_blocks() <= cfg.blocks(), "{}", name);
            prop_assert!(stats.evictions <= stats.misses, "{}", name);
        }
    }

    /// OPT is a true lower bound for every online policy.
    #[test]
    fn opt_is_a_lower_bound(trace in arb_trace()) {
        let cfg = config();
        let opt = optimal_misses(&trace, &cfg);
        for policy in all_policies(&cfg) {
            let name = policy.name();
            let mut cache = SetAssocCache::new("LLC", cfg, policy);
            for info in &trace {
                cache.access(info);
            }
            prop_assert!(
                opt.misses <= cache.stats().misses,
                "OPT ({}) must not exceed {} ({})",
                opt.misses,
                name,
                cache.stats().misses
            );
        }
    }

    /// Compulsory misses: no policy can miss fewer times than the number of
    /// distinct blocks in the trace.
    #[test]
    fn compulsory_misses_are_unavoidable(trace in arb_trace()) {
        let cfg = config();
        let distinct: std::collections::HashSet<u64> =
            trace.iter().map(|i| i.addr / 64).collect();
        for policy in all_policies(&cfg) {
            let name = policy.name();
            let mut cache = SetAssocCache::new("LLC", cfg, policy);
            for info in &trace {
                cache.access(info);
            }
            prop_assert!(cache.stats().misses >= distinct.len() as u64, "{}", name);
        }
    }
}

#[test]
fn grasp_protects_the_hot_working_set_under_thrashing() {
    // The core qualitative claim: with a hot working set that fits in the
    // cache and a cold stream that would thrash it, GRASP keeps the hot
    // blocks resident while LRU does not.
    let cfg = CacheConfig::new(64 * 128, 16, 64); // 128 blocks
    let hot_blocks: Vec<u64> = (0..96).collect();
    let mut trace = Vec::new();
    let mut cold_cursor = 1_000u64;
    for _round in 0..30 {
        for &b in &hot_blocks {
            trace.push(
                AccessInfo::read(b * 64)
                    .with_hint(ReuseHint::High)
                    .with_region(RegionLabel::Property),
            );
        }
        for _ in 0..512 {
            trace.push(
                AccessInfo::read(cold_cursor * 64)
                    .with_hint(ReuseHint::Low)
                    .with_region(RegionLabel::Property),
            );
            cold_cursor += 1;
        }
    }
    let run = |policy: Box<dyn ReplacementPolicy>| {
        let mut cache = SetAssocCache::new("LLC", cfg, policy);
        for info in &trace {
            cache.access(info);
        }
        cache.stats().clone()
    };
    let lru = run(Box::new(Lru::new(cfg.sets(), cfg.ways)));
    let rrip = run(Box::new(Drrip::new(cfg.sets(), cfg.ways, 3)));
    let grasp = run(Box::new(Grasp::new(cfg.sets(), cfg.ways, 3)));
    assert!(grasp.misses < lru.misses);
    assert!(grasp.misses <= rrip.misses);
    // GRASP should capture most of the hot reuse: hot accesses per round
    // after the first should overwhelmingly hit.
    let hot_accesses = 30 * hot_blocks.len() as u64;
    assert!(
        grasp.hits > hot_accesses * 7 / 10,
        "grasp hits {} of {} hot accesses",
        grasp.hits,
        hot_accesses
    );
}

#[test]
fn pinning_is_rigid_where_grasp_is_flexible() {
    // Phase 1: blocks A are hot (High hint). Phase 2: A stops being accessed
    // and a new working set B (Moderate/Low hints) becomes hot. PIN-100 keeps
    // A pinned and cannot adapt; GRASP lets A age out.
    let cfg = CacheConfig::new(64 * 64, 16, 64); // 64 blocks
    let mut trace = Vec::new();
    for _ in 0..20 {
        for b in 0..48u64 {
            trace.push(
                AccessInfo::read(b * 64)
                    .with_hint(ReuseHint::High)
                    .with_region(RegionLabel::Property),
            );
        }
    }
    for _ in 0..40 {
        for b in 100..148u64 {
            trace.push(
                AccessInfo::read(b * 64)
                    .with_hint(ReuseHint::Moderate)
                    .with_region(RegionLabel::Property),
            );
        }
    }
    let run = |policy: Box<dyn ReplacementPolicy>| {
        let mut cache = SetAssocCache::new("LLC", cfg, policy);
        for info in &trace {
            cache.access(info);
        }
        cache.stats().clone()
    };
    let pin100 = run(Box::new(PinX::new(cfg.sets(), cfg.ways, 100)));
    let grasp = run(Box::new(Grasp::new(cfg.sets(), cfg.ways, 3)));
    assert!(
        grasp.misses < pin100.misses,
        "grasp {} should adapt better than pin-100 {}",
        grasp.misses,
        pin100.misses
    );
}
