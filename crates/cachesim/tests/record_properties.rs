//! Property tests for the batched record kernel: `UpperLevels::access_batch`
//! against the per-event `UpperLevels::access` reference over arbitrary
//! read/write/flush sequences. The recorded traces must be byte-identical
//! (address and meta columns, persisted v2 bytes) and the upper-level L1/L2
//! statistics carried in the record context must match exactly — the whole
//! trace store keys on recordings being deterministic, so any divergence
//! here would poison every store hit.

use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::hint::RegionClassifier;
use grasp_cachesim::request::{AccessInfo, AccessKind, RegionLabel};
use grasp_cachesim::stage::UpperLevels;
use grasp_cachesim::trace::LlcTrace;
use proptest::prelude::*;

/// An arbitrary record-phase event: a demand access (read or write) issued
/// to the upper levels, or a full-hierarchy flush.
#[derive(Debug, Clone, Copy)]
enum Event {
    Access(AccessInfo),
    Flush,
}

/// Selector 7 of 8 becomes a flush; 4..7 write, 0..4 read. Addresses span
/// 512 KB at 8-byte granularity so L1/L2 hits, misses, dirty evictions and
/// every classifier region all occur.
fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u8..8, 0u64..(1 << 16), 0u16..32, 0u8..5), 1..800).prop_map(
        |entries| {
            entries
                .into_iter()
                .map(|(sel, slot, site, region)| {
                    if sel == 7 {
                        return Event::Flush;
                    }
                    let kind = if sel >= 4 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    Event::Access(AccessInfo {
                        addr: slot * 8,
                        kind,
                        site,
                        hint: grasp_cachesim::hint::ReuseHint::Default,
                        region: RegionLabel::ALL[region as usize],
                    })
                })
                .collect()
        },
    )
}

fn fresh_upper(config: HierarchyConfig) -> UpperLevels {
    let mut upper = UpperLevels::new(config, RegionClassifier::disabled());
    // Program the ABRs so the classifier is live and hints land in the
    // recorded meta column.
    upper.program_abrs(&[(0, 1 << 18)]);
    upper
}

/// The per-event reference: every access through `UpperLevels::access`.
fn record_per_event(events: &[Event], config: HierarchyConfig) -> LlcTrace {
    let mut upper = fresh_upper(config);
    let mut trace = LlcTrace::new();
    for event in events {
        match event {
            Event::Access(info) => {
                upper.access(info.addr, info.kind, info.site, info.region, &mut trace);
            }
            Event::Flush => {
                upper.flush();
                trace.push_flush();
            }
        }
    }
    trace.set_context(upper.record_context());
    trace
}

/// The batched path: accesses accumulate into columns of up to `window`
/// and go through `UpperLevels::access_batch`; a flush drains the pending
/// column first (exactly what the buffered workspace does).
fn record_batched(events: &[Event], config: HierarchyConfig, window: usize) -> LlcTrace {
    let mut upper = fresh_upper(config);
    let mut trace = LlcTrace::new();
    let mut column: Vec<AccessInfo> = Vec::new();
    let drain = |upper: &mut UpperLevels, trace: &mut LlcTrace, column: &mut Vec<AccessInfo>| {
        if !column.is_empty() {
            upper.access_batch(column, trace);
            column.clear();
        }
    };
    for event in events {
        match event {
            Event::Access(info) => {
                column.push(*info);
                if column.len() >= window {
                    drain(&mut upper, &mut trace, &mut column);
                }
            }
            Event::Flush => {
                drain(&mut upper, &mut trace, &mut column);
                upper.flush();
                trace.push_flush();
            }
        }
    }
    drain(&mut upper, &mut trace, &mut column);
    trace.set_context(upper.record_context());
    trace
}

fn persisted_bytes(trace: &LlcTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    trace
        .write_to(&mut bytes)
        .expect("in-memory persist cannot fail");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_record_is_bit_identical_to_per_event_record(events in arb_events()) {
        let config = HierarchyConfig::scaled_default();
        let reference = record_per_event(&events, config);
        // Window sizes straddling every interesting boundary: single-element
        // columns, odd windows smaller and larger than one kernel tile, and
        // one column holding the entire sequence.
        for window in [1usize, 13, 1024, 1699, events.len().max(1)] {
            let batched = record_batched(&events, config, window);
            prop_assert_eq!(&batched, &reference, "window {}", window);
            prop_assert_eq!(batched.context(), reference.context(), "window {}", window);
            prop_assert_eq!(
                persisted_bytes(&batched),
                persisted_bytes(&reference),
                "persisted v2 bytes, window {}",
                window
            );
        }
    }

    #[test]
    fn batched_record_parity_holds_without_prefetcher(events in arb_events()) {
        // The prefetcher pre-pass is the subtlest part of the batched kernel;
        // parity must also hold when it is absent entirely.
        let config = HierarchyConfig::scaled_default().without_prefetch();
        let reference = record_per_event(&events, config);
        let batched = record_batched(&events, config, 97);
        prop_assert_eq!(&batched, &reference);
        prop_assert_eq!(batched.context(), reference.context());
    }
}
