//! Admission control: a bounded-concurrency gate with a bounded wait queue.
//!
//! The daemon runs at most `max_active` campaigns at once. Requests beyond
//! that park in a queue of depth `queue_depth` (backpressure: the client
//! has been accepted on the socket but its campaign has not started);
//! requests beyond *that* are rejected immediately with a
//! `service/overloaded` error frame rather than queueing unboundedly.

use std::sync::{Condvar, Mutex};

/// The gate refused admission: the run slots and the wait queue were both
/// full at the time of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all campaign slots and queue positions are taken")
    }
}

impl std::error::Error for Overloaded {}

#[derive(Default)]
struct GateState {
    active: usize,
    waiting: usize,
}

/// A counting gate: up to `max_active` concurrent holders, up to
/// `queue_depth` blocked waiters, everyone else turned away.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_active: usize,
    queue_depth: usize,
}

impl std::fmt::Debug for GateState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState")
            .field("active", &self.active)
            .field("waiting", &self.waiting)
            .finish()
    }
}

impl AdmissionGate {
    /// A gate admitting `max_active` concurrent holders (clamped to at
    /// least one) with a wait queue of `queue_depth`.
    pub fn new(max_active: usize, queue_depth: usize) -> Self {
        Self {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_active: max_active.max(1),
            queue_depth,
        }
    }

    /// Acquires a run slot, blocking in the queue if the slots are full.
    /// Returns [`Overloaded`] without blocking when the queue is full too.
    /// The slot is released when the returned permit drops.
    pub fn admit(&self) -> Result<Permit<'_>, Overloaded> {
        let mut state = self.state.lock().expect("admission gate not poisoned");
        if state.active >= self.max_active {
            if state.waiting >= self.queue_depth {
                return Err(Overloaded);
            }
            state.waiting += 1;
            while state.active >= self.max_active {
                state = self.freed.wait(state).expect("admission gate not poisoned");
            }
            state.waiting -= 1;
        }
        state.active += 1;
        Ok(Permit { gate: self })
    }

    /// Campaigns currently holding a run slot.
    pub fn active(&self) -> usize {
        self.state
            .lock()
            .expect("admission gate not poisoned")
            .active
    }

    /// Requests parked in the wait queue.
    pub fn waiting(&self) -> usize {
        self.state
            .lock()
            .expect("admission gate not poisoned")
            .waiting
    }
}

/// An admitted campaign's run slot; dropping it frees the slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if let Ok(mut state) = self.gate.state.lock() {
            state.active -= 1;
        }
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn slots_below_the_cap_admit_immediately() {
        let gate = AdmissionGate::new(2, 0);
        let a = gate.admit().expect("first slot");
        let b = gate.admit().expect("second slot");
        assert_eq!(gate.active(), 2);
        drop(a);
        assert_eq!(gate.active(), 1);
        drop(b);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn a_full_gate_with_no_queue_rejects_instead_of_blocking() {
        let gate = AdmissionGate::new(1, 0);
        let held = gate.admit().expect("slot");
        assert_eq!(gate.admit().unwrap_err(), Overloaded);
        drop(held);
        // The slot came back: the next admit succeeds.
        assert!(gate.admit().is_ok());
    }

    #[test]
    fn queued_requests_run_after_the_holder_frees_the_slot() {
        let gate = AdmissionGate::new(1, 2);
        let order = AtomicUsize::new(0);
        let queued = Barrier::new(3);
        std::thread::scope(|scope| {
            let holder = gate.admit().expect("slot");
            for _ in 0..2 {
                scope.spawn(|| {
                    queued.wait();
                    let permit = gate.admit().expect("queue admits");
                    order.fetch_add(1, Ordering::Relaxed);
                    drop(permit);
                });
            }
            queued.wait();
            // Both waiters are queueing (or about to); wait until they park.
            while gate.waiting() < 2 {
                std::thread::yield_now();
            }
            assert_eq!(order.load(Ordering::Relaxed), 0, "queue holds while full");
            drop(holder);
        });
        assert_eq!(order.load(Ordering::Relaxed), 2, "both waiters ran");
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn overflow_beyond_the_queue_is_turned_away_while_waiters_survive() {
        let gate = AdmissionGate::new(1, 1);
        let holder = gate.admit().expect("slot");
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| gate.admit().map(drop));
            while gate.waiting() < 1 {
                std::thread::yield_now();
            }
            // Slot full, queue full: the third caller bounces.
            assert_eq!(gate.admit().unwrap_err(), Overloaded);
            drop(holder);
            waiter
                .join()
                .expect("waiter thread")
                .expect("waiter admits");
        });
    }

    #[test]
    fn a_zero_slot_gate_still_admits_one() {
        let gate = AdmissionGate::new(0, 0);
        assert!(gate.admit().is_ok());
    }
}
