//! A minimal blocking client for the service protocol: connect, send one
//! request frame, stream the response frames back.

use grasp_core::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Connects to the daemon at `socket`, sends `request` and invokes
/// `on_frame` for every response frame as it arrives (cells stream in
/// completion order, so a caller sees results incrementally while the rest
/// of the grid is still running). Returns when the daemon closes the
/// connection. A frame the daemon sends that is not valid JSON is an
/// [`std::io::ErrorKind::InvalidData`] error.
pub fn request_streaming(
    socket: &Path,
    request: &Json,
    on_frame: &mut dyn FnMut(&Json),
) -> std::io::Result<()> {
    let mut stream = UnixStream::connect(socket)?;
    let mut line = request.to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let frame = json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response frame: {e}"),
            )
        })?;
        on_frame(&frame);
    }
    Ok(())
}

/// [`request_streaming`] collecting every frame into a vector.
pub fn request(socket: &Path, request: &Json) -> std::io::Result<Vec<Json>> {
    let mut frames = Vec::new();
    request_streaming(socket, request, &mut |frame| frames.push(frame.clone()))?;
    Ok(frames)
}
