//! # grasp-serve — the campaign service daemon
//!
//! A dependency-free experiment service over a Unix domain socket: clients
//! submit serializable [`CampaignSpec`]s
//! (`grasp_core::spec`) as JSON, the daemon runs them on the library's
//! pipelined scheduler and streams per-cell result frames back as cells
//! complete. What the daemon adds over calling
//! [`Campaign::run`](grasp_core::campaign::Campaign::run) yourself:
//!
//! * **Single-flight recording** — every campaign shares one
//!   [`FlightRegistry`](grasp_core::FlightRegistry), so two clients whose
//!   grids overlap trigger exactly one recording per unique
//!   (dataset, technique, app) stream; the loser attaches to the winner's
//!   in-flight recording instead of re-running the application.
//! * **Shared persistence** — one [`TraceStore`](grasp_core::TraceStore)
//!   across all clients, swept back under a byte budget after each
//!   campaign ([`ServeConfig::store_budget`]).
//! * **Admission control** — a bounded number of concurrent campaigns with
//!   a bounded wait queue ([`AdmissionGate`]); beyond that, requests fail
//!   fast with a `service/overloaded` error frame.
//!
//! The wire protocol (newline-delimited JSON frames, stable
//! machine-readable error kinds) is specified in [`protocol`] and
//! `docs/service.md`. `cargo xtask serve` / `cargo xtask client` wrap this
//! crate for the command line.
//!
//! [`CampaignSpec`]: grasp_core::CampaignSpec

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod gate;
pub mod protocol;
pub mod server;

pub use gate::{AdmissionGate, Overloaded, Permit};
pub use protocol::{Request, KIND_OVERLOADED, KIND_REQUEST_INVALID};
pub use server::{ServeConfig, Server};
