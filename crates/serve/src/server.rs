//! The campaign daemon: accept loop, per-connection handlers, shutdown.

use crate::gate::AdmissionGate;
use crate::protocol::{self, Request};
use grasp_core::campaign::{Campaign, SchedulerEvent};
use grasp_core::datasets::DatasetId;
use grasp_core::json::Json;
use grasp_core::spec::CampaignSpec;
use grasp_core::{Error, FlightRegistry, TraceStore};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// How a [`Server`] is wired: where it listens, how many campaigns it runs
/// and queues at once, and whether (and how large) it persists recordings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-socket path the daemon listens on. A stale socket file from a
    /// dead daemon is removed at bind time.
    pub socket: PathBuf,
    /// Campaigns run concurrently; further runs queue. At least 1.
    pub max_campaigns: usize,
    /// Runs parked behind the active campaigns before new runs are
    /// rejected with `service/overloaded`.
    pub queue_depth: usize,
    /// Trace-store directory shared by every campaign the daemon runs
    /// (created if missing). `None` serves without persistence — streams
    /// are still deduplicated in flight, but nothing outlives the daemon.
    pub store: Option<PathBuf>,
    /// Store byte budget: after each campaign the store is swept back
    /// under this size, evicting least-recently-used entries.
    pub store_budget: Option<u64>,
}

impl ServeConfig {
    /// A config listening on `socket` with the defaults: two concurrent
    /// campaigns, a queue of four, no persistence.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            max_campaigns: 2,
            queue_depth: 4,
            store: None,
            store_budget: None,
        }
    }
}

/// Shared daemon state: one trace store, one single-flight registry and
/// one admission gate across every connection.
struct Daemon {
    config: ServeConfig,
    store: Option<Arc<TraceStore>>,
    flights: Arc<FlightRegistry>,
    gate: AdmissionGate,
    running: AtomicBool,
}

/// A bound campaign service. [`Server::bind`] claims the socket and opens
/// the store; [`Server::run`] serves until a client sends `shutdown`.
pub struct Server {
    listener: UnixListener,
    daemon: Arc<Daemon>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.daemon.config.socket)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Claims `config.socket` (removing a stale socket file first) and
    /// opens the trace store if one is configured.
    pub fn bind(config: ServeConfig) -> Result<Self, Error> {
        let store = match &config.store {
            Some(dir) => Some(Arc::new(
                TraceStore::open(dir.clone()).map_err(Error::from)?,
            )),
            None => None,
        };
        std::fs::remove_file(&config.socket).ok();
        let listener = UnixListener::bind(&config.socket).map_err(Error::from)?;
        let gate = AdmissionGate::new(config.max_campaigns, config.queue_depth);
        Ok(Self {
            listener,
            daemon: Arc::new(Daemon {
                config,
                store,
                flights: Arc::new(FlightRegistry::new()),
                gate,
                running: AtomicBool::new(true),
            }),
        })
    }

    /// The socket path the server is listening on.
    pub fn socket(&self) -> &Path {
        &self.daemon.config.socket
    }

    /// Serves connections until a `shutdown` request arrives, then drains
    /// in-flight connections, removes the socket file and returns.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for stream in self.listener.incoming() {
            if !self.daemon.running.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let daemon = Arc::clone(&self.daemon);
            workers.push(std::thread::spawn(move || {
                handle_connection(&daemon, stream)
            }));
        }
        for worker in workers {
            worker.join().ok();
        }
        std::fs::remove_file(&self.daemon.config.socket).ok();
        Ok(())
    }
}

/// Writes one frame line; returns whether the client is still listening.
fn write_frame(stream: &mut impl Write, frame: &Json) -> bool {
    let mut line = frame.to_string();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
        .is_ok()
}

fn handle_connection(daemon: &Daemon, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    match protocol::parse_request(line.trim_end()) {
        Err((kind, message)) => {
            write_frame(&mut writer, &protocol::error_frame(&kind, &message));
        }
        Ok(Request::Ping) => {
            write_frame(&mut writer, &Json::object([("type", Json::string("pong"))]));
        }
        Ok(Request::Stats) => {
            let frame = protocol::stats_frame(
                daemon.flights.stats(),
                daemon.store.as_ref().map(|s| s.stats()),
                daemon.gate.active(),
                daemon.gate.waiting(),
            );
            write_frame(&mut writer, &frame);
        }
        Ok(Request::Shutdown) => {
            daemon.running.store(false, Ordering::SeqCst);
            write_frame(&mut writer, &Json::object([("type", Json::string("bye"))]));
            // Poke the accept loop so it observes the cleared flag instead
            // of blocking on the next client forever.
            UnixStream::connect(&daemon.config.socket).ok();
        }
        Ok(Request::Run(spec)) => run_campaign(daemon, &mut writer, *spec),
    }
}

/// Serves one admitted run request: builds the campaign on the daemon's
/// store + single-flight registry, streams `cell` frames as cells complete
/// and closes with a `done` frame.
fn run_campaign(daemon: &Daemon, writer: &mut UnixStream, spec: CampaignSpec) {
    if spec
        .datasets
        .iter()
        .any(|d| matches!(d, DatasetId::Ingested(_)))
    {
        let frame = protocol::error_frame(
            "spec/invalid",
            "ingested datasets need a graph catalog; the service runs synthetic datasets only",
        );
        write_frame(writer, &frame);
        return;
    }
    // The daemon owns persistence: the spec's own store/codec choice is for
    // library runs, service campaigns all share the daemon's store so
    // single-flight and eviction see every recording.
    let mut local = spec;
    local.store = None;
    local.codec = None;
    let campaign = match Campaign::from_spec(&local) {
        Ok(campaign) => campaign,
        Err(err) => {
            write_frame(
                writer,
                &protocol::error_frame(err.kind(), &format!("{err}")),
            );
            return;
        }
    };
    let campaign = match &daemon.store {
        Some(store) => campaign.with_trace_store(Arc::clone(store)),
        None => campaign,
    };
    let campaign = campaign.with_single_flight(Arc::clone(&daemon.flights));

    let permit = match daemon.gate.admit() {
        Ok(permit) => permit,
        Err(overloaded) => {
            let frame = protocol::error_frame(protocol::KIND_OVERLOADED, &format!("{overloaded}"));
            write_frame(writer, &frame);
            return;
        }
    };
    let cells = local.cells().len();
    let streams = local.streams().len();
    if !write_frame(writer, &protocol::accepted_frame(cells, streams)) {
        return;
    }

    // Cell frames are written from whichever scheduler worker finishes the
    // cell, so the socket writer hands out frames under a lock. A client
    // that hangs up mid-run stops the stream but never the campaign (its
    // recordings may be serving other clients' flights).
    let sink = Mutex::new((writer, true));
    let result = campaign.run_with_observer(&|index, run| {
        let mut guard = sink.lock().expect("frame sink not poisoned");
        if guard.1 {
            let live = write_frame(&mut *guard.0, &protocol::cell_frame(index, run));
            guard.1 = live;
        }
    });

    let mut recorded = 0u64;
    let mut deduped = 0u64;
    let mut loads = 0u64;
    for event in result.scheduler_events() {
        match event {
            SchedulerEvent::RecordFinished { .. } => recorded += 1,
            SchedulerEvent::RecordDeduped { .. } => deduped += 1,
            SchedulerEvent::LoadFinished { .. } => loads += 1,
            _ => {}
        }
    }
    let frame = protocol::done_frame(
        result.len(),
        result.executed_mode().label(),
        recorded,
        deduped,
        loads,
        daemon.store.as_ref().map(|s| s.stats()),
    );
    {
        let mut guard = sink.lock().expect("frame sink not poisoned");
        if guard.1 {
            write_frame(&mut *guard.0, &frame);
        }
    }
    drop(permit);

    // Sweep the store back under budget after the campaign published its
    // recordings, so the store never grows without bound under a daemon
    // that serves many distinct grids.
    if let (Some(store), Some(budget)) = (&daemon.store, daemon.config.store_budget) {
        if let Err(err) = store.gc(budget) {
            eprintln!("grasp-serve: store sweep failed: {err}");
        }
    }
}
