//! The service wire protocol: newline-delimited JSON frames.
//!
//! A connection carries **one request frame** from the client and a stream
//! of response frames from the daemon, each a single-line JSON object
//! terminated by `\n`; the daemon closes the connection after the terminal
//! frame. Requests:
//!
//! * `{"type":"run","spec":{...}}` — run a campaign grid
//!   ([`CampaignSpec`] wire shape). Responses: one `accepted` frame, one
//!   `cell` frame per grid cell **in completion order**, one terminal
//!   `done` frame.
//! * `{"type":"ping"}` → `{"type":"pong"}`.
//! * `{"type":"stats"}` → a `stats` frame (single-flight, store and
//!   admission counters).
//! * `{"type":"shutdown"}` → `{"type":"bye"}`, then the daemon stops
//!   accepting and drains in-flight campaigns.
//!
//! Any failure is a terminal `{"type":"error","kind":...,"message":...}`
//! frame. `kind` is machine-readable and stable: spec/store/trace/graph
//! failures carry [`grasp_core::Error::kind`] verbatim
//! ([`grasp_core::error`] documents the vocabulary); the two service-level
//! kinds are [`KIND_REQUEST_INVALID`] and [`KIND_OVERLOADED`].
//!
//! Cell frames identify results exactly — floating-point members are
//! carried as bit patterns (`cycles_bits`) or FNV-1a fingerprints over bit
//! patterns (`values_fnv`), so "the service returns the same result as a
//! library run" is byte-comparable, not approximately-equal.

use grasp_core::campaign::CampaignRun;
use grasp_core::json::Json;
use grasp_core::spec::{self, CampaignSpec};
use grasp_core::{FlightStats, TraceStoreStats};

/// Error-frame kind for requests the daemon cannot parse at all: bad JSON,
/// a missing or unknown `type`, a missing `spec` member.
pub const KIND_REQUEST_INVALID: &str = "request/invalid";

/// Error-frame kind for runs rejected by admission control (all campaign
/// slots and queue positions taken).
pub const KIND_OVERLOADED: &str = "service/overloaded";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a campaign grid. Boxed: a spec (five axis vectors plus the
    /// hierarchy override) dwarfs the dataless control requests.
    Run(Box<CampaignSpec>),
    /// Liveness probe.
    Ping,
    /// Service counters snapshot.
    Stats,
    /// Stop accepting, drain, exit.
    Shutdown,
}

/// Parses one request line. Errors come back as `(kind, message)` ready
/// for an error frame: structural problems are [`KIND_REQUEST_INVALID`],
/// spec problems keep their `spec/invalid` kind.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let invalid = |message: String| (KIND_REQUEST_INVALID.to_owned(), message);
    let doc =
        grasp_core::json::parse(line).map_err(|e| invalid(format!("unparseable request: {e}")))?;
    let Some(kind) = doc.get("type").and_then(Json::as_str) else {
        return Err(invalid(
            "request object needs a string \"type\" member".to_owned(),
        ));
    };
    match kind {
        "run" => {
            let Some(spec) = doc.get("spec") else {
                return Err(invalid("run request needs a \"spec\" member".to_owned()));
            };
            let spec = CampaignSpec::from_value(spec)
                .map_err(|e| (e.kind().to_owned(), format!("{e}")))?;
            Ok(Request::Run(Box::new(spec)))
        }
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(invalid(format!("unknown request type {other:?}"))),
    }
}

/// The `run` request frame for a spec (what `cargo xtask client run` sends).
pub fn run_request(spec: &CampaignSpec) -> Json {
    Json::object([("type", Json::string("run")), ("spec", spec.to_value())])
}

/// A bare `{"type": kind}` request frame (`ping` / `stats` / `shutdown`).
pub fn simple_request(kind: &str) -> Json {
    Json::object([("type", Json::string(kind))])
}

/// The terminal error frame.
pub fn error_frame(kind: &str, message: &str) -> Json {
    Json::object([
        ("type", Json::string("error")),
        ("kind", Json::string(kind)),
        ("message", Json::string(message)),
    ])
}

/// The first frame of a run response: the grid was admitted and is
/// running. `cells` and `streams` restate the grid the daemon derived from
/// the spec, so the client can track completion.
pub fn accepted_frame(cells: usize, streams: usize) -> Json {
    Json::object([
        ("type", Json::string("accepted")),
        ("cells", Json::integer(cells as u64)),
        ("streams", Json::integer(streams as u64)),
    ])
}

/// One completed grid cell, emitted in completion order. `index` is the
/// cell's grid index ([`CampaignSpec::cells`] order), so clients can
/// reassemble grid order from the completion stream.
pub fn cell_frame(index: usize, run: &CampaignRun) -> Json {
    Json::object([
        ("type", Json::string("cell")),
        ("index", Json::integer(index as u64)),
        ("dataset", Json::string(run.cell.dataset.slug())),
        ("technique", Json::string(run.cell.technique.label())),
        ("app", Json::string(run.cell.app.label())),
        ("policy", Json::string(spec::policy_wire(run.cell.policy))),
        ("llc_accesses", Json::integer(run.result.llc_accesses())),
        ("llc_misses", Json::integer(run.result.llc_misses())),
        ("cycles_bits", Json::string(f64_bits(run.result.cycles))),
        (
            "values_fnv",
            Json::string(values_fingerprint(&run.result.app.values)),
        ),
        (
            "iterations",
            Json::integer(run.result.app.iterations as u64),
        ),
        (
            "edges_processed",
            Json::integer(run.result.app.edges_processed),
        ),
    ])
}

/// The terminal frame of a successful run. `recorded` / `deduped` /
/// `loads` recount the campaign's scheduler event log: recordings this
/// campaign executed, planned recordings served by another in-flight
/// campaign (the single-flight dedup), and store loads.
pub fn done_frame(
    cells: usize,
    mode: &str,
    recorded: u64,
    deduped: u64,
    loads: u64,
    store: Option<TraceStoreStats>,
) -> Json {
    let mut members = vec![
        ("type", Json::string("done")),
        ("cells", Json::integer(cells as u64)),
        ("mode", Json::string(mode)),
        ("recorded", Json::integer(recorded)),
        ("deduped", Json::integer(deduped)),
        ("loads", Json::integer(loads)),
    ];
    if let Some(stats) = store {
        members.push(("store", store_value(stats)));
    }
    Json::object(members)
}

/// The `stats` response frame: single-flight counters, store counters (when
/// the daemon persists), and the admission gate's live occupancy.
pub fn stats_frame(
    flights: FlightStats,
    store: Option<TraceStoreStats>,
    active: usize,
    waiting: usize,
) -> Json {
    let mut members = vec![
        ("type", Json::string("stats")),
        (
            "flights",
            Json::object([
                ("recorded", Json::integer(flights.recorded)),
                ("store_hits", Json::integer(flights.store_hits)),
                ("attached", Json::integer(flights.attached)),
            ]),
        ),
        ("active", Json::integer(active as u64)),
        ("waiting", Json::integer(waiting as u64)),
    ];
    if let Some(stats) = store {
        members.push(("store", store_value(stats)));
    }
    Json::object(members)
}

fn store_value(stats: TraceStoreStats) -> Json {
    Json::object([
        ("hits", Json::integer(stats.hits)),
        ("misses", Json::integer(stats.misses)),
        ("corrupt", Json::integer(stats.corrupt)),
        ("bytes_read", Json::integer(stats.bytes_read)),
        ("bytes_written", Json::integer(stats.bytes_written)),
    ])
}

/// An `f64` as its exact bit pattern (16 lowercase hex digits).
pub fn f64_bits(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// FNV-1a (64-bit) over the bit patterns of a value vector — an exact
/// fingerprint of an application's output without shipping every value.
pub fn values_fingerprint(values: &[f64]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for value in values {
        for byte in value.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::datasets::Scale;

    #[test]
    fn requests_round_trip_through_their_frames() {
        let mut spec = CampaignSpec::new(Scale::Tiny);
        spec.threads = 2;
        let frame = run_request(&spec).to_string();
        match parse_request(&frame).expect("run parses") {
            Request::Run(parsed) => assert_eq!(*parsed, spec),
            other => panic!("expected a run request, got {other:?}"),
        }
        for (kind, expected) in [
            ("ping", Request::Ping),
            ("stats", Request::Stats),
            ("shutdown", Request::Shutdown),
        ] {
            let frame = simple_request(kind).to_string();
            assert_eq!(parse_request(&frame).expect("parses"), expected);
        }
    }

    #[test]
    fn structural_problems_are_request_invalid() {
        for bad in ["", "{", "[1,2]", "{\"spec\":{}}", "{\"type\":\"zap\"}"] {
            let (kind, _) = parse_request(bad).expect_err("rejected");
            assert_eq!(kind, KIND_REQUEST_INVALID, "input {bad:?}");
        }
        let (kind, _) = parse_request("{\"type\":\"run\"}").expect_err("spec required");
        assert_eq!(kind, KIND_REQUEST_INVALID);
    }

    #[test]
    fn spec_problems_keep_their_spec_invalid_kind() {
        let (kind, message) = parse_request("{\"type\":\"run\",\"spec\":{\"scale\":\"galactic\"}}")
            .expect_err("bad scale rejected");
        assert_eq!(kind, "spec/invalid");
        assert!(message.contains("galactic"), "{message}");
    }

    #[test]
    fn fingerprints_are_exact_bit_functions() {
        assert_eq!(f64_bits(1.0), "3ff0000000000000");
        assert_ne!(f64_bits(0.0), f64_bits(-0.0), "sign bit distinguishes");
        assert_eq!(values_fingerprint(&[]), "cbf29ce484222325");
        assert_eq!(
            values_fingerprint(&[1.0, 2.0]),
            values_fingerprint(&[1.0, 2.0])
        );
        assert_ne!(
            values_fingerprint(&[1.0, 2.0]),
            values_fingerprint(&[2.0, 1.0]),
            "order matters"
        );
    }
}
