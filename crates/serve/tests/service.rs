//! End-to-end service tests over real Unix sockets: single-flight
//! deduplication across concurrent clients, warm-store replays, stable
//! error frames for malformed requests, admission control and clean
//! shutdown.

use grasp_core::campaign::{Campaign, ExecutionMode};
use grasp_core::datasets::{DatasetKind, Scale};
use grasp_core::json::Json;
use grasp_core::policy::PolicyKind;
use grasp_core::spec::CampaignSpec;
use grasp_core::Codec;
use grasp_reorder::TechniqueKind;
use grasp_serve::{client, protocol, ServeConfig, Server};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grasp-serve-itest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("test scratch dir");
    dir
}

/// A 4-cell / 2-stream grid: tw × DBG × {PR, SSSP} × {RRIP, GRASP}.
fn small_grid() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Scale::Tiny);
    spec.datasets = vec![DatasetKind::Twitter.into()];
    spec.techniques = vec![TechniqueKind::Dbg];
    spec.apps = vec![
        grasp_analytics::apps::AppKind::PageRank,
        grasp_analytics::apps::AppKind::Sssp,
    ];
    spec.policies = vec![PolicyKind::Rrip, PolicyKind::Grasp];
    spec.mode = ExecutionMode::Pipelined;
    spec.threads = 2;
    spec.codec = Some(Codec::DeltaVarint);
    spec
}

fn frame_type(frame: &Json) -> &str {
    frame.get("type").and_then(Json::as_str).unwrap_or("?")
}

fn member(frame: &Json, name: &str) -> u64 {
    frame
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("frame lacks numeric member {name:?}: {frame}"))
}

/// Splits a run response into (accepted, cells-by-index, done), asserting
/// the frame grammar on the way.
fn split_run_response(frames: &[Json]) -> (&Json, BTreeMap<u64, &Json>, &Json) {
    let accepted = frames.first().expect("response not empty");
    assert_eq!(frame_type(accepted), "accepted", "{accepted}");
    let done = frames.last().expect("response not empty");
    assert_eq!(frame_type(done), "done", "{done}");
    let mut cells = BTreeMap::new();
    for frame in &frames[1..frames.len() - 1] {
        assert_eq!(frame_type(frame), "cell", "{frame}");
        cells.insert(member(frame, "index"), frame);
    }
    (accepted, cells, done)
}

#[test]
fn concurrent_overlapping_grids_record_each_stream_once() {
    let scratch = temp_dir("flight");
    let socket = scratch.join("daemon.sock");
    let mut config = ServeConfig::new(&socket);
    config.max_campaigns = 4;
    config.store = Some(scratch.join("store"));
    let server = Server::bind(config).expect("bind");
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    let spec = small_grid();
    let request = protocol::run_request(&spec);
    let clients = 3;
    let responses: Vec<Vec<Json>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| client::request(&socket, &request).expect("run request")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Frame grammar and single-flight accounting. RecordFinished is an
    // exact census of executed recordings, so summing the done frames'
    // `recorded` across clients counts real recordings globally — exactly
    // one per unique (dataset, technique, app) stream.
    let mut recorded = 0;
    let mut served = 0;
    for frames in &responses {
        let (accepted, cells, done) = split_run_response(frames);
        assert_eq!(member(accepted, "cells"), 4);
        assert_eq!(member(accepted, "streams"), 2);
        assert_eq!(cells.len(), 4, "every grid cell streamed");
        assert_eq!(member(done, "cells"), 4);
        recorded += member(done, "recorded");
        served += member(done, "recorded") + member(done, "deduped") + member(done, "loads");
    }
    assert_eq!(recorded, 2, "one recording per unique stream, fleet-wide");
    assert_eq!(served, 6, "every client had each of its 2 streams served");

    // Every client saw bit-identical per-cell results...
    let reference = &responses[0];
    let (_, reference_cells, _) = split_run_response(reference);
    for frames in &responses[1..] {
        let (_, cells, _) = split_run_response(frames);
        for (index, frame) in &reference_cells {
            assert_eq!(
                cells[index].to_string(),
                frame.to_string(),
                "cell {index} differs between clients"
            );
        }
    }
    // ...identical to what the library produces for the same spec.
    let library = Campaign::from_spec(&spec).expect("library campaign").run();
    for (index, run) in library.iter().enumerate() {
        let expected = protocol::cell_frame(index, run).to_string();
        assert_eq!(
            reference_cells[&(index as u64)].to_string(),
            expected,
            "service cell {index} differs from the library run"
        );
    }

    // The store saw exactly the two cold misses (and nothing corrupt): the
    // deduplicated campaigns attached in flight without touching it.
    let (_, _, done) = split_run_response(&responses[0]);
    let store = done.get("store").expect("daemon persists");
    assert_eq!(member(store, "misses"), 2);
    assert_eq!(member(store, "corrupt"), 0);

    // A warm client replays entirely from the published store.
    let frames = client::request(&socket, &request).expect("warm request");
    let (_, cells, done) = split_run_response(&frames);
    assert_eq!(member(done, "recorded"), 0, "warm pass records nothing");
    assert_eq!(member(done, "loads"), 2, "both streams load from the store");
    for (index, frame) in &reference_cells {
        assert_eq!(
            cells[index].to_string(),
            frame.to_string(),
            "warm cell {index} differs from the cold run"
        );
    }

    // The stats frame agrees: two flights recorded, the rest shared.
    let frames = client::request(&socket, &protocol::simple_request("stats")).expect("stats");
    assert_eq!(frames.len(), 1);
    let flights = frames[0].get("flights").expect("flight counters");
    assert_eq!(member(flights, "recorded"), 2);

    let frames = client::request(&socket, &protocol::simple_request("shutdown")).expect("bye");
    assert_eq!(frame_type(&frames[0]), "bye");
    daemon.join().expect("daemon thread");
    assert!(!socket.exists(), "shutdown removes the socket file");
    std::fs::remove_dir_all(&scratch).ok();
}

/// Sends one raw line (not necessarily valid JSON) and returns the frames.
fn raw_request(socket: &Path, line: &str) -> Vec<String> {
    let mut stream = std::os::unix::net::UnixStream::connect(socket).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    stream.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read frame"))
        .collect()
}

#[test]
fn malformed_requests_get_stable_error_kinds() {
    let scratch = temp_dir("errors");
    let socket = scratch.join("daemon.sock");
    let server = Server::bind(ServeConfig::new(&socket)).expect("bind");
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    let cases = [
        ("this is not json", "request/invalid"),
        ("{\"spec\":{}}", "request/invalid"),
        ("{\"type\":\"zap\"}", "request/invalid"),
        ("{\"type\":\"run\"}", "request/invalid"),
        (
            "{\"type\":\"run\",\"spec\":{\"scale\":\"galactic\"}}",
            "spec/invalid",
        ),
        (
            // Spec-valid, service-refused: ingested datasets need a catalog.
            "{\"type\":\"run\",\"spec\":{\"scale\":\"tiny\",\
             \"datasets\":[\"gdeadbeef01234567\"]}}",
            "spec/invalid",
        ),
    ];
    for (request, expected_kind) in cases {
        let frames = raw_request(&socket, request);
        assert_eq!(frames.len(), 1, "one terminal frame for {request:?}");
        let frame = grasp_core::json::parse(&frames[0]).expect("error frame is valid JSON");
        assert_eq!(frame_type(&frame), "error", "{frame}");
        assert_eq!(
            frame.get("kind").and_then(Json::as_str),
            Some(expected_kind),
            "request {request:?} answered {frame}"
        );
        assert!(
            frame.get("message").and_then(Json::as_str).is_some(),
            "error frames carry a human-readable message"
        );
    }

    // A liveness probe still answers after all that abuse.
    let frames = client::request(&socket, &protocol::simple_request("ping")).expect("ping");
    assert_eq!(frame_type(&frames[0]), "pong");

    client::request(&socket, &protocol::simple_request("shutdown")).expect("bye");
    daemon.join().expect("daemon thread");
    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn a_full_daemon_rejects_runs_with_an_overloaded_frame() {
    let scratch = temp_dir("admission");
    let socket = scratch.join("daemon.sock");
    let mut config = ServeConfig::new(&socket);
    config.max_campaigns = 1;
    config.queue_depth = 0;
    let server = Server::bind(config).expect("bind");
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    // An 8-cell grid holds the single campaign slot long enough for a
    // second run to bounce off the gate deterministically: the `accepted`
    // frame is only written once the slot is held.
    let mut busy = small_grid();
    busy.datasets = vec![DatasetKind::Twitter.into(), DatasetKind::Kron.into()];
    let request = protocol::run_request(&busy);
    let (started, running) = mpsc::channel();
    let socket_for_holder = socket.clone();
    let holder = std::thread::spawn(move || {
        let mut frames = Vec::new();
        client::request_streaming(&socket_for_holder, &request, &mut |frame| {
            if frame_type(frame) == "accepted" {
                started.send(()).ok();
            }
            frames.push(frame.clone());
        })
        .expect("busy run");
        frames
    });
    running.recv().expect("busy campaign admitted");

    let frames =
        client::request(&socket, &protocol::run_request(&small_grid())).expect("second run");
    assert_eq!(frames.len(), 1, "rejected before any cell streams");
    assert_eq!(frame_type(&frames[0]), "error");
    assert_eq!(
        frames[0].get("kind").and_then(Json::as_str),
        Some(protocol::KIND_OVERLOADED),
        "{}",
        frames[0]
    );

    // The busy campaign finishes untouched by the rejection.
    let frames = holder.join().expect("holder thread");
    let (_, cells, done) = split_run_response(&frames);
    assert_eq!(cells.len(), 8);
    assert_eq!(member(done, "cells"), 8);

    // With the slot free again, the same request is admitted.
    let frames = client::request(&socket, &protocol::run_request(&small_grid())).expect("retry");
    assert_eq!(frame_type(&frames[0]), "accepted");

    client::request(&socket, &protocol::simple_request("shutdown")).expect("bye");
    daemon.join().expect("daemon thread");
    std::fs::remove_dir_all(&scratch).ok();
}
